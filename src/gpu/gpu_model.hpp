// Simulated GPU device (stand-in for the paper's V100).
//
// The simulator executes GPU-scheduled SDFGs with the same VM as the CPU
// backend (results are real) and integrates an analytic timing model: a
// per-kernel roofline of HBM bandwidth vs. peak FLOP rate, plus launch
// latency per kernel, an atomic-update penalty per WCR store, and PCIe
// transfers for kernel arguments.  The CuPy baseline (cupy_like.hpp)
// shares the same device model, charged per eager operation, so the
// DaCe-vs-CuPy comparison isolates exactly what the paper attributes the
// Fig. 8 speedups to: kernel fusion (fewer launches, no intermediate
// global-memory round trips) and WCR atomics (the resnet anomaly).
#pragma once

#include <cstdint>
#include <string>

#include "runtime/bytecode.hpp"

namespace dace::gpu {

struct GpuModel {
  std::string name = "sim-v100";
  double launch_latency_s = 6e-6;   // kernel launch overhead
  double hbm_bandwidth = 800e9;     // bytes/s (effective)
  double flop_rate = 6.0e12;        // double-precision FLOP/s
  double atomic_cost_s = 10e-9;     // extra cost per conflicting WCR update
  double pcie_bandwidth = 12e9;     // bytes/s
  double pcie_latency_s = 10e-6;    // per transfer
  double alloc_cost_s = 1e-6;       // pool allocation per temporary
  double dispatch_cost_s = 4e-6;    // host-side per-op dispatch (eager only)

  /// Roofline kernel execution time for the given statistics.
  double kernel_time(const rt::VMStats& d) const {
    double bytes =
        8.0 * (double)(d.loads + d.stores + d.wcr_stores);
    double t_mem = bytes / hbm_bandwidth;
    double t_cmp = (double)d.flops / flop_rate;
    double t = launch_latency_s + (t_mem > t_cmp ? t_mem : t_cmp);
    t += (double)d.wcr_stores * atomic_cost_s;
    return t;
  }

  double transfer_time(int64_t bytes) const {
    return pcie_latency_s + (double)bytes / pcie_bandwidth;
  }
};

/// Result of a simulated device run.
struct GpuRunResult {
  double kernel_time_s = 0;    // device compute time
  double transfer_time_s = 0;  // H2D + D2H
  int64_t kernels = 0;         // number of launches
  rt::VMStats stats;

  double total_s() const { return kernel_time_s + transfer_time_s; }
};

}  // namespace dace::gpu
