#include "gpu/cupy_like.hpp"

namespace dace::gpu {

namespace {

class CupyObserver final : public rt::EagerObserver {
 public:
  explicit CupyObserver(const GpuModel& model) : model_(model) {}

  void on_op(const std::string& kind, int64_t out_elems, int64_t in_elems,
             int64_t flops) override {
    if (kind == "alloc") {
      // Device pool allocation only.
      result.kernel_time_s += model_.alloc_cost_s;
      return;
    }
    rt::VMStats d;
    d.loads = (uint64_t)in_elems;
    d.stores = (uint64_t)out_elems;
    d.flops = (uint64_t)flops;
    result.kernel_time_s += model_.kernel_time(d) + model_.dispatch_cost_s +
                            model_.alloc_cost_s;
    result.stats += d;
    ++result.kernels;
  }

  const GpuModel& model_;
  GpuRunResult result;
};

}  // namespace

GpuRunResult run_cupy(const fe::Function& f, rt::Bindings& args,
                      const sym::SymbolMap& symbols, const GpuModel& model) {
  CupyObserver obs(model);
  rt::EagerInterpreter interp(f, &obs);
  interp.run(args, symbols);
  GpuRunResult res = obs.result;
  for (const auto& p : f.params) {
    if (p.shape.empty() && ir::dtype_is_integer(p.dtype)) continue;
    auto it = args.find(p.name);
    if (it == args.end()) continue;
    res.transfer_time_s += 2 * model.transfer_time(it->second.size() * 8);
  }
  return res;
}

}  // namespace dace::gpu
