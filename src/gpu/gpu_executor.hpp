// Executes a GPU-optimized SDFG on the simulated device.
#pragma once

#include "gpu/gpu_model.hpp"
#include "ir/sdfg.hpp"
#include "runtime/executor.hpp"

namespace dace::gpu {

/// Run `sdfg` (auto-optimized for DeviceType::GPU) on the simulated
/// device: computes real results into `args` and returns the modeled
/// device timing. Host<->device transfers are charged for every argument
/// in both directions, matching explicit copy-in/copy-out codegen.
GpuRunResult run_gpu(const ir::SDFG& sdfg, rt::Bindings& args,
                     const sym::SymbolMap& symbols,
                     const GpuModel& model = GpuModel());

}  // namespace dace::gpu
