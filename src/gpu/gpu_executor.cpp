#include "gpu/gpu_executor.hpp"

namespace dace::gpu {

GpuRunResult run_gpu(const ir::SDFG& sdfg, rt::Bindings& args,
                     const sym::SymbolMap& symbols, const GpuModel& model) {
  GpuRunResult res;
  rt::ExecutorOptions opts;
  opts.launch_hook = [&](const std::string& kind, const rt::VMStats& d) {
    (void)kind;
    res.kernel_time_s += model.kernel_time(d);
    ++res.kernels;
  };
  rt::Executor ex(sdfg, opts);
  ex.run(args, symbols);
  res.stats = ex.stats();
  // Argument transfers (copy-in at SDFG start, copy-out at the end).
  for (const auto& an : sdfg.arg_names()) {
    int64_t bytes = args.at(an).size() * 8;
    res.transfer_time_s += 2 * model.transfer_time(bytes);
  }
  return res;
}

}  // namespace dace::gpu
