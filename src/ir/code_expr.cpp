#include "ir/code_expr.hpp"

#include <sstream>

namespace dace::ir {

using detail::CodeNode;

namespace {
std::shared_ptr<const CodeNode> make_node(CodeOp op, double v,
                                          std::string name,
                                          std::vector<CodeExpr> args) {
  auto n = std::make_shared<CodeNode>();
  n->op = op;
  n->value = v;
  n->name = std::move(name);
  n->args = std::move(args);
  return n;
}
}  // namespace

CodeExpr::CodeExpr(double v)
    : node_(make_node(CodeOp::Const, v, {}, {})) {}

CodeExpr CodeExpr::input(const std::string& name) {
  return CodeExpr(make_node(CodeOp::Input, 0, name, {}));
}

CodeExpr CodeExpr::symbol(const std::string& name) {
  return CodeExpr(make_node(CodeOp::Sym, 0, name, {}));
}

CodeExpr CodeExpr::unary(CodeOp op, CodeExpr a) {
  return CodeExpr(make_node(op, 0, {}, {std::move(a)}));
}

CodeExpr CodeExpr::binary(CodeOp op, CodeExpr a, CodeExpr b) {
  return CodeExpr(make_node(op, 0, {}, {std::move(a), std::move(b)}));
}

CodeExpr CodeExpr::select(CodeExpr cond, CodeExpr t, CodeExpr f) {
  return CodeExpr(make_node(CodeOp::Select, 0, {},
                            {std::move(cond), std::move(t), std::move(f)}));
}

void CodeExpr::free_inputs(std::set<std::string>& out) const {
  if (!node_) return;
  if (node_->op == CodeOp::Input) out.insert(node_->name);
  for (const auto& a : node_->args) a.free_inputs(out);
}

std::set<std::string> CodeExpr::free_inputs() const {
  std::set<std::string> out;
  free_inputs(out);
  return out;
}

void CodeExpr::free_symbols(std::set<std::string>& out) const {
  if (!node_) return;
  if (node_->op == CodeOp::Sym) out.insert(node_->name);
  for (const auto& a : node_->args) a.free_symbols(out);
}

CodeExpr CodeExpr::subs_inputs(const std::map<std::string, CodeExpr>& m) const {
  if (!node_) return *this;
  if (node_->op == CodeOp::Input) {
    auto it = m.find(node_->name);
    if (it != m.end()) return it->second;
    return *this;
  }
  if (node_->args.empty()) return *this;
  std::vector<CodeExpr> args;
  args.reserve(node_->args.size());
  for (const auto& a : node_->args) args.push_back(a.subs_inputs(m));
  return CodeExpr(make_node(node_->op, node_->value, node_->name,
                            std::move(args)));
}

CodeExpr CodeExpr::rename_inputs(
    const std::map<std::string, std::string>& m) const {
  std::map<std::string, CodeExpr> em;
  for (const auto& [k, v] : m) em.emplace(k, CodeExpr::input(v));
  return subs_inputs(em);
}

CodeExpr CodeExpr::subs_symbols(
    const std::map<std::string, CodeExpr>& m) const {
  if (!node_) return *this;
  if (node_->op == CodeOp::Sym) {
    auto it = m.find(node_->name);
    if (it != m.end()) return it->second;
    return *this;
  }
  if (node_->args.empty()) return *this;
  std::vector<CodeExpr> args;
  args.reserve(node_->args.size());
  for (const auto& a : node_->args) args.push_back(a.subs_symbols(m));
  return CodeExpr(make_node(node_->op, node_->value, node_->name,
                            std::move(args)));
}

double CodeExpr::eval(const std::map<std::string, double>& inputs,
                      const sym::SymbolMap& syms) const {
  DACE_CHECK(node_ != nullptr, "code: evaluating empty expression");
  auto arg = [&](size_t i) { return node_->args[i].eval(inputs, syms); };
  switch (node_->op) {
    case CodeOp::Const: return node_->value;
    case CodeOp::Input: {
      auto it = inputs.find(node_->name);
      DACE_CHECK(it != inputs.end(), "code: unbound input ", node_->name);
      return it->second;
    }
    case CodeOp::Sym: {
      auto it = syms.find(node_->name);
      DACE_CHECK(it != syms.end(), "code: unbound symbol ", node_->name);
      return static_cast<double>(it->second);
    }
    case CodeOp::Add: return arg(0) + arg(1);
    case CodeOp::Sub: return arg(0) - arg(1);
    case CodeOp::Mul: return arg(0) * arg(1);
    case CodeOp::Div: return arg(0) / arg(1);
    case CodeOp::Pow: return std::pow(arg(0), arg(1));
    case CodeOp::Mod: {
      double a = arg(0), b = arg(1);
      double r = std::fmod(a, b);
      if (r != 0 && ((r < 0) != (b < 0))) r += b;
      return r;
    }
    case CodeOp::Min: return std::min(arg(0), arg(1));
    case CodeOp::Max: return std::max(arg(0), arg(1));
    case CodeOp::Neg: return -arg(0);
    case CodeOp::Abs: return std::abs(arg(0));
    case CodeOp::Exp: return std::exp(arg(0));
    case CodeOp::Log: return std::log(arg(0));
    case CodeOp::Sqrt: return std::sqrt(arg(0));
    case CodeOp::Sin: return std::sin(arg(0));
    case CodeOp::Cos: return std::cos(arg(0));
    case CodeOp::Tanh: return std::tanh(arg(0));
    case CodeOp::Floor: return std::floor(arg(0));
    case CodeOp::Lt: return arg(0) < arg(1) ? 1.0 : 0.0;
    case CodeOp::Le: return arg(0) <= arg(1) ? 1.0 : 0.0;
    case CodeOp::Gt: return arg(0) > arg(1) ? 1.0 : 0.0;
    case CodeOp::Ge: return arg(0) >= arg(1) ? 1.0 : 0.0;
    case CodeOp::Eq: return arg(0) == arg(1) ? 1.0 : 0.0;
    case CodeOp::Ne: return arg(0) != arg(1) ? 1.0 : 0.0;
    case CodeOp::And: return (arg(0) != 0 && arg(1) != 0) ? 1.0 : 0.0;
    case CodeOp::Or: return (arg(0) != 0 || arg(1) != 0) ? 1.0 : 0.0;
    case CodeOp::Not: return arg(0) == 0 ? 1.0 : 0.0;
    case CodeOp::Select: return arg(0) != 0 ? arg(1) : arg(2);
  }
  throw err("code: unreachable op");
}

int CodeExpr::op_count() const {
  if (!node_) return 0;
  int n = 1;
  for (const auto& a : node_->args) n += a.op_count();
  return n;
}

namespace {
const char* binop_token(CodeOp op) {
  switch (op) {
    case CodeOp::Add: return "+";
    case CodeOp::Sub: return "-";
    case CodeOp::Mul: return "*";
    case CodeOp::Div: return "/";
    case CodeOp::Lt: return "<";
    case CodeOp::Le: return "<=";
    case CodeOp::Gt: return ">";
    case CodeOp::Ge: return ">=";
    case CodeOp::Eq: return "==";
    case CodeOp::Ne: return "!=";
    case CodeOp::And: return "and";
    case CodeOp::Or: return "or";
    default: return nullptr;
  }
}

const char* func_token(CodeOp op) {
  switch (op) {
    case CodeOp::Pow: return "pow";
    case CodeOp::Mod: return "mod";
    case CodeOp::Min: return "min";
    case CodeOp::Max: return "max";
    case CodeOp::Abs: return "abs";
    case CodeOp::Exp: return "exp";
    case CodeOp::Log: return "log";
    case CodeOp::Sqrt: return "sqrt";
    case CodeOp::Sin: return "sin";
    case CodeOp::Cos: return "cos";
    case CodeOp::Tanh: return "tanh";
    case CodeOp::Floor: return "floor";
    case CodeOp::Not: return "not";
    case CodeOp::Select: return "select";
    default: return nullptr;
  }
}

void print(const CodeExpr& e, std::ostream& os) {
  switch (e.op()) {
    case CodeOp::Const: os << e.value(); return;
    case CodeOp::Input: os << e.name(); return;
    case CodeOp::Sym: os << e.name(); return;
    case CodeOp::Neg:
      os << "(-";
      print(e.args()[0], os);
      os << ")";
      return;
    default: break;
  }
  if (const char* tok = binop_token(e.op())) {
    os << "(";
    print(e.args()[0], os);
    os << " " << tok << " ";
    print(e.args()[1], os);
    os << ")";
    return;
  }
  if (const char* fn = func_token(e.op())) {
    os << fn << "(";
    for (size_t i = 0; i < e.args().size(); ++i) {
      if (i) os << ", ";
      print(e.args()[i], os);
    }
    os << ")";
    return;
  }
  os << "?";
}
}  // namespace

std::string CodeExpr::to_string() const {
  if (!node_) return "<none>";
  std::ostringstream os;
  print(*this, os);
  return os.str();
}

namespace {
CodeExpr sym_to_code(const sym::Expr& e) {
  using sym::ExprKind;
  switch (e.kind()) {
    case ExprKind::Const:
      return CodeExpr::constant(static_cast<double>(e.constant()));
    case ExprKind::Symbol:
      return CodeExpr::symbol(e.symbol_name());
    case ExprKind::Add: {
      auto ops = e.operands();
      CodeExpr acc = sym_to_code(ops[0]);
      for (size_t i = 1; i < ops.size(); ++i)
        acc = CodeExpr::binary(CodeOp::Add, acc, sym_to_code(ops[i]));
      return acc;
    }
    case ExprKind::Mul: {
      auto ops = e.operands();
      CodeExpr acc = sym_to_code(ops[0]);
      for (size_t i = 1; i < ops.size(); ++i)
        acc = CodeExpr::binary(CodeOp::Mul, acc, sym_to_code(ops[i]));
      return acc;
    }
    case ExprKind::FloorDiv: {
      auto ops = e.operands();
      return CodeExpr::unary(
          CodeOp::Floor,
          CodeExpr::binary(CodeOp::Div, sym_to_code(ops[0]),
                           sym_to_code(ops[1])));
    }
    case ExprKind::Mod: {
      auto ops = e.operands();
      return CodeExpr::binary(CodeOp::Mod, sym_to_code(ops[0]),
                              sym_to_code(ops[1]));
    }
    case ExprKind::Min: {
      auto ops = e.operands();
      return CodeExpr::binary(CodeOp::Min, sym_to_code(ops[0]),
                              sym_to_code(ops[1]));
    }
    case ExprKind::Max: {
      auto ops = e.operands();
      return CodeExpr::binary(CodeOp::Max, sym_to_code(ops[0]),
                              sym_to_code(ops[1]));
    }
  }
  throw err("to_code: unsupported symbolic form: ", e.to_string());
}
}  // namespace

CodeExpr to_code(const sym::Expr& e) { return sym_to_code(e); }

std::optional<sym::Expr> code_to_sym(const CodeExpr& e) {
  using sym::Expr;
  if (!e.valid()) return std::nullopt;
  switch (e.op()) {
    case CodeOp::Const: {
      double v = e.value();
      if (v != (double)(int64_t)v) return std::nullopt;
      return Expr((int64_t)v);
    }
    case CodeOp::Sym:
      return Expr::symbol(e.name());
    case CodeOp::Add:
    case CodeOp::Sub:
    case CodeOp::Mul:
    case CodeOp::Div:
    case CodeOp::Mod:
    case CodeOp::Min:
    case CodeOp::Max: {
      auto a = code_to_sym(e.args()[0]);
      auto b = code_to_sym(e.args()[1]);
      if (!a || !b) return std::nullopt;
      switch (e.op()) {
        case CodeOp::Add: return *a + *b;
        case CodeOp::Sub: return *a - *b;
        case CodeOp::Mul: return *a * *b;
        // Integer context: symbol-valued division on interstate edges is
        // floor division (mirrors to_code emitting Floor(Div(a, b))).
        case CodeOp::Div: return sym::floordiv(*a, *b);
        case CodeOp::Mod: return sym::mod(*a, *b);
        case CodeOp::Min: return sym::min(*a, *b);
        default: return sym::max(*a, *b);
      }
    }
    case CodeOp::Neg: {
      auto a = code_to_sym(e.args()[0]);
      if (!a) return std::nullopt;
      return -*a;
    }
    case CodeOp::Floor: {
      // Integer expressions are already floored; Floor(Div(a, b)) is the
      // round-trip image of sym::floordiv.
      return code_to_sym(e.args()[0]);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace dace::ir
