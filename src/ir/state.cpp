#include <algorithm>
#include <deque>
#include <sstream>

#include "ir/sdfg.hpp"

namespace dace::ir {

std::string Memlet::to_string() const {
  if (empty()) return "(empty)";
  std::ostringstream os;
  os << data << subset.to_string();
  if (wcr != WCR::None) os << " (wcr: " << wcr_name(wcr) << ")";
  return os.str();
}

std::string MapEntry::label() const {
  std::ostringstream os;
  os << name << "[";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) os << ", ";
    os << params[i] << "=" << range.range(i).to_string();
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// Node management
// ---------------------------------------------------------------------------

int State::add_node(std::unique_ptr<Node> n) {
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int State::add_access(const std::string& data) {
  return add_node(std::make_unique<AccessNode>(data));
}

int State::add_tasklet(const std::string& name,
                       std::vector<std::string> inputs, CodeExpr code) {
  return add_node(
      std::make_unique<Tasklet>(name, std::move(inputs), std::move(code)));
}

std::pair<int, int> State::add_map(const std::string& name,
                                   std::vector<std::string> params,
                                   sym::Subset range, Schedule sched) {
  DACE_CHECK(params.size() == range.dims(), "map '", name,
             "': parameter/range rank mismatch");
  auto entry =
      std::make_unique<MapEntry>(name, std::move(params), std::move(range));
  entry->schedule = sched;
  int eid = add_node(std::move(entry));
  int xid = add_node(std::make_unique<MapExit>());
  node_as<MapEntry>(eid)->exit_node = xid;
  node_as<MapExit>(xid)->entry_node = eid;
  return {eid, xid};
}

int State::add_library(const std::string& op) {
  return add_node(std::make_unique<LibraryNode>(op));
}

int State::add_nested(std::shared_ptr<SDFG> sdfg) {
  return add_node(std::make_unique<NestedSDFGNode>(std::move(sdfg)));
}

int State::absorb(State& other) {
  int offset = static_cast<int>(nodes_.size());
  for (auto& np : other.nodes_) nodes_.push_back(std::move(np));
  for (auto& e : other.edges_) {
    Edge ne = e;
    ne.src += offset;
    ne.dst += offset;
    // Re-pair map entry/exit ids.
    edges_.push_back(std::move(ne));
  }
  for (int i = offset; i < (int)nodes_.size(); ++i) {
    if (!nodes_[i]) continue;
    if (auto* m = dynamic_cast<MapEntry*>(nodes_[i].get())) {
      m->exit_node += offset;
    } else if (auto* m = dynamic_cast<MapExit*>(nodes_[i].get())) {
      m->entry_node += offset;
    }
  }
  other.nodes_.clear();
  other.edges_.clear();
  return offset;
}

void State::redirect_node(int from, int to) {
  for (auto& e : edges_) {
    if (e.src == from) e.src = to;
    if (e.dst == from) e.dst = to;
  }
}

bool State::has_path(int a, int b) const {
  if (a == b) return true;
  std::set<int> seen{a};
  std::deque<int> work{a};
  while (!work.empty()) {
    int id = work.front();
    work.pop_front();
    for (const auto& e : edges_) {
      if (e.src != id) continue;
      if (e.dst == b) return true;
      if (seen.insert(e.dst).second) work.push_back(e.dst);
    }
  }
  return false;
}

void State::remove_node(int id) {
  DACE_CHECK(alive(id), "remove_node: dead node ", id);
  for (const auto& e : edges_) {
    DACE_CHECK(e.src != id && e.dst != id,
               "remove_node: node ", id, " still has edges");
  }
  nodes_[id].reset();
}

void State::remove_node_and_edges(int id) {
  remove_edges_if([&](const Edge& e) { return e.src == id || e.dst == id; });
  remove_node(id);
}

std::vector<int> State::node_ids() const {
  std::vector<int> out;
  for (int i = 0; i < (int)nodes_.size(); ++i) {
    if (nodes_[i]) out.push_back(i);
  }
  return out;
}

int State::num_nodes() const {
  int n = 0;
  for (const auto& p : nodes_) n += (p != nullptr);
  return n;
}

// ---------------------------------------------------------------------------
// Edge management
// ---------------------------------------------------------------------------

void State::add_edge(int src, const std::string& src_conn, int dst,
                     const std::string& dst_conn, Memlet memlet) {
  DACE_CHECK(alive(src), "add_edge: dead source node ", src);
  DACE_CHECK(alive(dst), "add_edge: dead destination node ", dst);
  edges_.push_back(Edge{src, src_conn, dst, dst_conn, std::move(memlet)});
}

void State::remove_edge(size_t index) {
  DACE_CHECK(index < edges_.size(), "remove_edge: bad index");
  edges_.erase(edges_.begin() + static_cast<long>(index));
}

void State::remove_edges_if(const std::function<bool(const Edge&)>& pred) {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(), pred),
               edges_.end());
}

std::vector<size_t> State::in_edge_ids(int node) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].dst == node) out.push_back(i);
  }
  return out;
}

std::vector<size_t> State::out_edge_ids(int node) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].src == node) out.push_back(i);
  }
  return out;
}

std::vector<const Edge*> State::in_edges(int node) const {
  std::vector<const Edge*> out;
  for (const auto& e : edges_) {
    if (e.dst == node) out.push_back(&e);
  }
  return out;
}

std::vector<const Edge*> State::out_edges(int node) const {
  std::vector<const Edge*> out;
  for (const auto& e : edges_) {
    if (e.src == node) out.push_back(&e);
  }
  return out;
}

int State::in_degree(int node) const {
  int n = 0;
  for (const auto& e : edges_) n += (e.dst == node);
  return n;
}

int State::out_degree(int node) const {
  int n = 0;
  for (const auto& e : edges_) n += (e.src == node);
  return n;
}

// ---------------------------------------------------------------------------
// Structure queries
// ---------------------------------------------------------------------------

std::vector<int> State::topological_order() const {
  std::map<int, int> indeg;
  for (int id : node_ids()) indeg[id] = 0;
  for (const auto& e : edges_) indeg[e.dst]++;
  std::deque<int> ready;
  for (auto& [id, d] : indeg) {
    if (d == 0) ready.push_back(id);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    int id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const auto& e : edges_) {
      if (e.src == id && --indeg[e.dst] == 0) ready.push_back(e.dst);
    }
  }
  DACE_CHECK(order.size() == indeg.size(), "state '", label_,
             "': dataflow graph has a cycle");
  return order;
}

std::vector<int> State::source_nodes() const {
  std::vector<int> out;
  for (int id : node_ids()) {
    if (in_degree(id) == 0) out.push_back(id);
  }
  return out;
}

std::vector<int> State::sink_nodes() const {
  std::vector<int> out;
  for (int id : node_ids()) {
    if (out_degree(id) == 0) out.push_back(id);
  }
  return out;
}

std::vector<int> State::scope_nodes(int map_entry) const {
  const auto* entry = node_as<MapEntry>(map_entry);
  DACE_CHECK(entry != nullptr, "scope_nodes: node is not a MapEntry");
  int exit = entry->exit_node;
  // BFS from entry along edges, not crossing the exit.
  std::set<int> seen;
  std::deque<int> work{map_entry};
  while (!work.empty()) {
    int id = work.front();
    work.pop_front();
    for (const auto& e : edges_) {
      if (e.src != id || e.dst == exit) continue;
      if (seen.insert(e.dst).second) {
        work.push_back(e.dst);
        // Nested maps: jump over their scope via the paired exit too.
        if (const auto* me = node_as<MapEntry>(e.dst)) {
          if (seen.insert(me->exit_node).second) work.push_back(me->exit_node);
        }
      }
    }
  }
  return {seen.begin(), seen.end()};
}

int State::scope_of(int node) const {
  // Walk backwards: a node's scope is determined by the innermost map
  // entry on any path to it whose exit has not been crossed. Compute by
  // checking membership in each map's scope (graphs are small).
  int best = -1;
  size_t best_size = SIZE_MAX;
  for (int id : node_ids()) {
    if (node_as<MapEntry>(id) == nullptr || id == node) continue;
    std::vector<int> scope = scope_nodes(id);
    if (std::find(scope.begin(), scope.end(), node) != scope.end()) {
      if (scope.size() < best_size) {
        best = id;
        best_size = scope.size();
      }
    }
  }
  return best;
}

State::AccessSets State::access_sets() const {
  AccessSets s;
  for (const auto& e : edges_) {
    if (e.memlet.empty()) continue;
    // Read if source is an access node of this container; write if dest is.
    if (const auto* a = node_as<AccessNode>(e.src)) {
      if (a->data == e.memlet.data)
        s.reads[e.memlet.data].push_back(e.memlet.subset);
    }
    if (const auto* a = node_as<AccessNode>(e.dst)) {
      if (a->data == e.memlet.data)
        s.writes[e.memlet.data].push_back(e.memlet.subset);
    }
  }
  return s;
}

}  // namespace dace::ir
