#include <algorithm>
#include <deque>
#include <sstream>

#include "ir/sdfg.hpp"

namespace dace::ir {

std::unique_ptr<Node> NestedSDFGNode::clone() const {
  auto n = std::make_unique<NestedSDFGNode>(sdfg);
  n->in_connectors = in_connectors;
  n->out_connectors = out_connectors;
  n->symbol_mapping = symbol_mapping;
  n->instrument = instrument;
  return n;
}

std::string NestedSDFGNode::label() const {
  return sdfg ? sdfg->name() : "<nested>";
}

std::string InterstateEdge::to_string() const {
  std::ostringstream os;
  if (condition.valid()) os << "if " << condition.to_string();
  for (const auto& [k, v] : assignments) {
    os << " " << k << "=" << v.to_string();
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

DataDesc& SDFG::add_array(const std::string& name, DType dtype,
                          std::vector<sym::Expr> shape, bool transient) {
  DACE_CHECK(!arrays_.count(name), "SDFG '", name_, "': duplicate container '",
             name, "'");
  DataDesc d;
  d.name = name;
  d.dtype = dtype;
  d.shape = std::move(shape);
  d.transient = transient;
  for (const auto& s : d.shape) {
    for (const auto& fs : s.free_symbols()) symbols_.insert(fs);
  }
  return arrays_.emplace(name, std::move(d)).first->second;
}

DataDesc& SDFG::add_scalar(const std::string& name, DType dtype,
                           bool transient) {
  auto& d = add_array(name, dtype, {}, transient);
  if (transient) d.storage = Storage::Register;
  return d;
}

DataDesc& SDFG::add_stream(const std::string& name, DType dtype,
                           int64_t depth) {
  auto& d = add_array(name, dtype, {}, /*transient=*/true);
  d.is_stream = true;
  d.stream_depth = depth;
  d.storage = Storage::FPGALocal;
  return d;
}

DataDesc& SDFG::add_temp(const std::string& prefix, DType dtype,
                         std::vector<sym::Expr> shape) {
  return add_array(unique_name(prefix), dtype, std::move(shape),
                   /*transient=*/true);
}

DataDesc& SDFG::array(const std::string& name) {
  auto it = arrays_.find(name);
  DACE_CHECK(it != arrays_.end(), "SDFG '", name_, "': unknown container '",
             name, "'");
  return it->second;
}

const DataDesc& SDFG::array(const std::string& name) const {
  auto it = arrays_.find(name);
  DACE_CHECK(it != arrays_.end(), "SDFG '", name_, "': unknown container '",
             name, "'");
  return it->second;
}

void SDFG::remove_array(const std::string& name) {
  DACE_CHECK(arrays_.erase(name) == 1, "SDFG '", name_,
             "': removing unknown container '", name, "'");
}

void SDFG::rename_array(const std::string& old_name,
                        const std::string& new_name) {
  DACE_CHECK(arrays_.count(old_name), "rename: unknown container ", old_name);
  DACE_CHECK(!arrays_.count(new_name), "rename: target exists ", new_name);
  DataDesc d = arrays_.at(old_name);
  d.name = new_name;
  arrays_.erase(old_name);
  arrays_.emplace(new_name, std::move(d));
  for (auto& sp : states_) {
    if (!sp) continue;
    for (int id : sp->node_ids()) {
      if (auto* a = sp->node_as<AccessNode>(id)) {
        if (a->data == old_name) a->data = new_name;
      }
    }
    for (auto& e : sp->edges()) {
      if (e.memlet.data == old_name) e.memlet.data = new_name;
    }
  }
  for (auto& an : arg_names_) {
    if (an == old_name) an = new_name;
  }
}

// ---------------------------------------------------------------------------
// States and interstate edges
// ---------------------------------------------------------------------------

State& SDFG::add_state(const std::string& label, bool is_start) {
  states_.push_back(std::make_unique<State>(label));
  if (is_start || states_.size() == 1)
    start_state_ = static_cast<int>(states_.size()) - 1;
  return *states_.back();
}

State& SDFG::add_state_between(int src, int dst, const std::string& label) {
  State& s = add_state(label);
  int sid = static_cast<int>(states_.size()) - 1;
  for (auto& e : istate_edges_) {
    if (e.src == src && e.dst == dst) {
      e.dst = sid;
      add_interstate_edge(sid, dst);
      return s;
    }
  }
  add_interstate_edge(src, sid);
  add_interstate_edge(sid, dst);
  return s;
}

int SDFG::num_states() const {
  int n = 0;
  for (const auto& s : states_) n += (s != nullptr);
  return n;
}

std::vector<int> SDFG::state_ids() const {
  std::vector<int> out;
  for (int i = 0; i < (int)states_.size(); ++i) {
    if (states_[i]) out.push_back(i);
  }
  return out;
}

void SDFG::remove_state(int id) {
  DACE_CHECK(state_alive(id), "remove_state: dead state ", id);
  istate_edges_.erase(
      std::remove_if(istate_edges_.begin(), istate_edges_.end(),
                     [&](const InterstateEdge& e) {
                       return e.src == id || e.dst == id;
                     }),
      istate_edges_.end());
  states_[id].reset();
}

int SDFG::state_id(const State* s) const {
  for (int i = 0; i < (int)states_.size(); ++i) {
    if (states_[i].get() == s) return i;
  }
  return -1;
}

void SDFG::add_interstate_edge(
    int src, int dst, CodeExpr condition,
    std::vector<std::pair<std::string, sym::Expr>> assignments) {
  DACE_CHECK(state_alive(src) && state_alive(dst),
             "interstate edge references dead state");
  for (const auto& [k, v] : assignments) {
    symbols_.insert(k);
    for (const auto& fs : v.free_symbols()) symbols_.insert(fs);
  }
  istate_edges_.push_back(
      InterstateEdge{src, dst, std::move(condition), std::move(assignments)});
}

std::vector<size_t> SDFG::out_interstate(int state) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < istate_edges_.size(); ++i) {
    if (istate_edges_[i].src == state) out.push_back(i);
  }
  return out;
}

std::vector<size_t> SDFG::in_interstate(int state) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < istate_edges_.size(); ++i) {
    if (istate_edges_[i].dst == state) out.push_back(i);
  }
  return out;
}

std::vector<int> SDFG::state_order() const {
  std::vector<int> order;
  std::set<int> seen;
  std::deque<int> work;
  if (state_alive(start_state_)) {
    work.push_back(start_state_);
    seen.insert(start_state_);
  }
  while (!work.empty()) {
    int id = work.front();
    work.pop_front();
    order.push_back(id);
    for (size_t ei : out_interstate(id)) {
      int nxt = istate_edges_[ei].dst;
      if (seen.insert(nxt).second) work.push_back(nxt);
    }
  }
  for (int id : state_ids()) {
    if (!seen.count(id)) order.push_back(id);
  }
  return order;
}

std::string SDFG::unique_name(const std::string& prefix) {
  std::string name;
  do {
    name = prefix + "_" + std::to_string(name_counter_++);
  } while (arrays_.count(name));
  return name;
}

std::set<std::string> SDFG::free_symbols() const {
  std::set<std::string> used;
  for (const auto& [name, desc] : arrays_) {
    for (const auto& s : desc.shape) s.free_symbols(used);
  }
  for (const auto& sp : states_) {
    if (!sp) continue;
    for (int id : sp->node_ids()) {
      if (const auto* m = sp->node_as<MapEntry>(id)) {
        for (const auto& r : m->range.ranges()) {
          r.begin.free_symbols(used);
          r.end.free_symbols(used);
          r.step.free_symbols(used);
        }
      } else if (const auto* t = sp->node_as<Tasklet>(id)) {
        t->code.free_symbols(used);
      } else if (const auto* l = sp->node_as<LibraryNode>(id)) {
        for (const auto& [k, v] : l->sym_attrs) {
          (void)k;
          v.free_symbols(used);
        }
      }
    }
    for (const auto& e : sp->edges()) {
      for (const auto& r : e.memlet.subset.ranges()) {
        r.begin.free_symbols(used);
        r.end.free_symbols(used);
        r.step.free_symbols(used);
      }
    }
  }
  std::set<std::string> assigned;
  for (const auto& e : istate_edges_) {
    if (e.condition.valid()) e.condition.free_symbols(used);
    for (const auto& [k, v] : e.assignments) {
      assigned.insert(k);
      v.free_symbols(used);
    }
  }
  // Map parameters are bound inside their scope, not free.
  for (const auto& sp : states_) {
    if (!sp) continue;
    for (int id : sp->node_ids()) {
      if (const auto* m = sp->node_as<MapEntry>(id)) {
        for (const auto& p : m->params) assigned.insert(p);
      }
    }
  }
  std::set<std::string> out;
  for (const auto& s : used) {
    if (!assigned.count(s)) out.insert(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Clone
// ---------------------------------------------------------------------------

std::unique_ptr<SDFG> SDFG::clone() const {
  auto out = std::make_unique<SDFG>(name_);
  out->arrays_ = arrays_;
  out->arg_names_ = arg_names_;
  out->symbols_ = symbols_;
  out->istate_edges_ = istate_edges_;
  out->start_state_ = start_state_;
  out->name_counter_ = name_counter_;
  out->states_.reserve(states_.size());
  for (const auto& sp : states_) {
    if (!sp) {
      out->states_.push_back(nullptr);
      continue;
    }
    auto ns = std::make_unique<State>(sp->label());
    ns->instrument = sp->instrument;
    ns->nodes_.reserve(sp->nodes_.size());
    for (const auto& np : sp->nodes_) {
      ns->nodes_.push_back(np ? np->clone() : nullptr);
    }
    ns->edges_ = sp->edges_;
    out->states_.push_back(std::move(ns));
  }
  return out;
}

void SDFG::swap(SDFG& other) noexcept {
  std::swap(name_, other.name_);
  std::swap(arrays_, other.arrays_);
  std::swap(arg_names_, other.arg_names_);
  std::swap(symbols_, other.symbols_);
  std::swap(states_, other.states_);
  std::swap(istate_edges_, other.istate_edges_);
  std::swap(start_state_, other.start_state_);
  std::swap(name_counter_, other.name_counter_);
}

}  // namespace dace::ir
