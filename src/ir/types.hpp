// Enumerations shared across the SDFG IR.
#pragma once

#include <cstddef>
#include <string>

#include "common/common.hpp"

namespace dace::ir {

/// Element types of data containers (NumPy-compatible, Section 2 of the
/// paper). All arithmetic is performed in double precision internally;
/// narrower types round on store.
enum class DType { f32, f64, i32, i64, b8 };

inline size_t dtype_size(DType t) {
  switch (t) {
    case DType::f32: return 4;
    case DType::f64: return 8;
    case DType::i32: return 4;
    case DType::i64: return 8;
    case DType::b8: return 1;
  }
  return 8;
}

inline bool dtype_is_integer(DType t) {
  return t == DType::i32 || t == DType::i64 || t == DType::b8;
}

inline const char* dtype_name(DType t) {
  switch (t) {
    case DType::f32: return "float32";
    case DType::f64: return "float64";
    case DType::i32: return "int32";
    case DType::i64: return "int64";
    case DType::b8: return "bool";
  }
  return "?";
}

inline const char* dtype_ctype(DType t) {
  switch (t) {
    case DType::f32: return "float";
    case DType::f64: return "double";
    case DType::i32: return "int";
    case DType::i64: return "long long";
    case DType::b8: return "bool";
  }
  return "double";
}

/// Where a data container lives.
enum class Storage {
  Default,      // host heap
  Register,     // scalar register / stack variable
  CPUStack,     // small fixed-size array on the stack
  CPUHeap,      // host heap (explicit)
  GPUGlobal,    // device global memory (simulated)
  GPUShared,    // device shared memory (simulated)
  FPGAGlobal,   // device DRAM (simulated)
  FPGALocal,    // on-chip memory (simulated)
};

inline const char* storage_name(Storage s) {
  switch (s) {
    case Storage::Default: return "Default";
    case Storage::Register: return "Register";
    case Storage::CPUStack: return "CPU_Stack";
    case Storage::CPUHeap: return "CPU_Heap";
    case Storage::GPUGlobal: return "GPU_Global";
    case Storage::GPUShared: return "GPU_Shared";
    case Storage::FPGAGlobal: return "FPGA_Global";
    case Storage::FPGALocal: return "FPGA_Local";
  }
  return "?";
}

/// Allocation lifetime of transients (Section 3.1, transient allocation
/// mitigation: persistent transients are allocated once per SDFG).
enum class Lifetime { Scope, Persistent };

/// Execution schedule of a map scope.
enum class Schedule {
  Sequential,    // plain loop nest
  CPUParallel,   // OpenMP-style parallel for over the outer dimension
  GPUDevice,     // kernel launch over a grid (simulated GPU)
  FPGAPipeline,  // pipelined loop on the simulated FPGA fabric
};

inline const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Sequential: return "Sequential";
    case Schedule::CPUParallel: return "CPU_Multicore";
    case Schedule::GPUDevice: return "GPU_Device";
    case Schedule::FPGAPipeline: return "FPGA_Pipeline";
  }
  return "?";
}

/// Write-conflict resolution operators on memlets (Section 2.3).
enum class WCR { None, Sum, Prod, Min, Max };

inline const char* wcr_name(WCR w) {
  switch (w) {
    case WCR::None: return "none";
    case WCR::Sum: return "sum";
    case WCR::Prod: return "prod";
    case WCR::Min: return "min";
    case WCR::Max: return "max";
  }
  return "?";
}

/// Per-node instrumentation (the paper's InstrumentationType attribute):
/// how the runtime measures this map/tasklet/state/library node.
///   Off     -- not instrumented (a process-wide default can still apply,
///              see DACE_INSTRUMENT in docs/OBSERVABILITY.md)
///   Timer   -- wall-clock span per execution (self/total time)
///   Counter -- iteration counter track instead of spans
enum class Instrument { Off, Timer, Counter };

inline const char* instrument_name(Instrument i) {
  switch (i) {
    case Instrument::Off: return "Off";
    case Instrument::Timer: return "Timer";
    case Instrument::Counter: return "Counter";
  }
  return "?";
}

/// Device targets of the auto-optimizer (Section 3.1).
enum class DeviceType { CPU, GPU, FPGA };

inline const char* device_name(DeviceType d) {
  switch (d) {
    case DeviceType::CPU: return "CPU";
    case DeviceType::GPU: return "GPU";
    case DeviceType::FPGA: return "FPGA";
  }
  return "?";
}

}  // namespace dace::ir
