// SDFG rendering: Graphviz for human inspection, a stable text dump for
// golden tests and debugging.
#include <sstream>

#include "ir/sdfg.hpp"

namespace dace::ir {

namespace {

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* node_shape(NodeKind k) {
  switch (k) {
    case NodeKind::Access: return "ellipse";
    case NodeKind::Tasklet: return "octagon";
    case NodeKind::MapEntry: return "trapezium";
    case NodeKind::MapExit: return "invtrapezium";
    case NodeKind::Library: return "folder";
    case NodeKind::NestedSDFG: return "box";
  }
  return "box";
}

}  // namespace

std::string SDFG::to_dot() const {
  std::ostringstream os;
  os << "digraph " << quote(name_) << " {\n";
  os << "  compound=true;\n";
  for (int sid : state_ids()) {
    const State& st = state(sid);
    os << "  subgraph cluster_s" << sid << " {\n";
    os << "    label=" << quote(st.label()) << ";\n";
    os << "    style=filled; color=lightblue;\n";
    for (int nid : st.node_ids()) {
      const Node* n = st.node(nid);
      os << "    s" << sid << "n" << nid << " [label="
         << quote(n->label()) << ", shape=" << node_shape(n->kind) << "];\n";
    }
    // A state needs at least one node for cluster edges to anchor.
    if (st.node_ids().empty()) {
      os << "    s" << sid << "anchor [label=\"\", shape=point];\n";
    }
    for (const auto& e : st.edges()) {
      os << "    s" << sid << "n" << e.src << " -> s" << sid << "n" << e.dst
         << " [label=" << quote(e.memlet.to_string());
      if (e.memlet.wcr != WCR::None) os << ", style=dashed";
      os << "];\n";
    }
    os << "  }\n";
  }
  for (const auto& e : istate_edges_) {
    auto anchor = [&](int sid) {
      const State& st = state(sid);
      auto ids = st.node_ids();
      std::ostringstream a;
      if (ids.empty()) {
        a << "s" << sid << "anchor";
      } else {
        a << "s" << sid << "n" << ids.front();
      }
      return a.str();
    };
    os << "  " << anchor(e.src) << " -> " << anchor(e.dst)
       << " [ltail=cluster_s" << e.src << ", lhead=cluster_s" << e.dst
       << ", color=blue, label=" << quote(e.to_string()) << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string SDFG::dump() const {
  std::ostringstream os;
  os << "sdfg " << name_ << "\n";
  for (const auto& [name, d] : arrays_) {
    os << "  " << (d.transient ? "transient " : "array ") << name << ": "
       << dtype_name(d.dtype) << "[";
    for (size_t i = 0; i < d.shape.size(); ++i) {
      if (i) os << ", ";
      os << d.shape[i].to_string();
    }
    os << "]";
    if (d.storage != Storage::Default) os << " @" << storage_name(d.storage);
    if (d.lifetime == Lifetime::Persistent) os << " persistent";
    if (d.is_stream) os << " stream(" << d.stream_depth << ")";
    os << "\n";
  }
  for (int sid : state_order()) {
    const State& st = state(sid);
    os << "  state " << sid << " '" << st.label() << "'"
       << (sid == start_state_ ? " (start)" : "") << "\n";
    for (int nid : st.node_ids()) {
      const Node* n = st.node(nid);
      os << "    n" << nid << ": ";
      switch (n->kind) {
        case NodeKind::Access: os << "access "; break;
        case NodeKind::Tasklet: os << "tasklet "; break;
        case NodeKind::MapEntry: os << "map_entry "; break;
        case NodeKind::MapExit: os << "map_exit "; break;
        case NodeKind::Library: os << "library "; break;
        case NodeKind::NestedSDFG: os << "nested "; break;
      }
      os << n->label();
      if (const auto* t = dynamic_cast<const Tasklet*>(n)) {
        os << " :: " << t->output << " = " << t->code.to_string();
      } else if (const auto* m = dynamic_cast<const MapEntry*>(n)) {
        os << " :: " << schedule_name(m->schedule);
      } else if (const auto* l = dynamic_cast<const LibraryNode*>(n)) {
        os << " :: impl=" << l->implementation;
      }
      os << "\n";
    }
    for (const auto& e : st.edges()) {
      os << "    n" << e.src;
      if (!e.src_conn.empty()) os << "." << e.src_conn;
      os << " -> n" << e.dst;
      if (!e.dst_conn.empty()) os << "." << e.dst_conn;
      os << " : " << e.memlet.to_string() << "\n";
    }
  }
  for (const auto& e : istate_edges_) {
    os << "  edge " << e.src << " -> " << e.dst;
    std::string s = e.to_string();
    if (!s.empty()) os << " [" << s << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace dace::ir
