// SDFG rendering and serialization: Graphviz for human inspection, a
// stable text dump for golden tests, and a reloadable S-expression
// format (save / load_sdfg) for offline tools such as sdfg-lint.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/diag.hpp"
#include "ir/sdfg.hpp"

namespace dace::ir {

namespace {

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* node_shape(NodeKind k) {
  switch (k) {
    case NodeKind::Access: return "ellipse";
    case NodeKind::Tasklet: return "octagon";
    case NodeKind::MapEntry: return "trapezium";
    case NodeKind::MapExit: return "invtrapezium";
    case NodeKind::Library: return "folder";
    case NodeKind::NestedSDFG: return "box";
  }
  return "box";
}

}  // namespace

std::string SDFG::to_dot() const {
  std::ostringstream os;
  os << "digraph " << quote(name_) << " {\n";
  os << "  compound=true;\n";
  for (int sid : state_ids()) {
    const State& st = state(sid);
    os << "  subgraph cluster_s" << sid << " {\n";
    os << "    label=" << quote(st.label()) << ";\n";
    os << "    style=filled; color=lightblue;\n";
    for (int nid : st.node_ids()) {
      const Node* n = st.node(nid);
      os << "    s" << sid << "n" << nid << " [label="
         << quote(n->label()) << ", shape=" << node_shape(n->kind) << "];\n";
    }
    // A state needs at least one node for cluster edges to anchor.
    if (st.node_ids().empty()) {
      os << "    s" << sid << "anchor [label=\"\", shape=point];\n";
    }
    for (const auto& e : st.edges()) {
      os << "    s" << sid << "n" << e.src << " -> s" << sid << "n" << e.dst
         << " [label=" << quote(e.memlet.to_string());
      if (e.memlet.wcr != WCR::None) os << ", style=dashed";
      os << "];\n";
    }
    os << "  }\n";
  }
  for (const auto& e : istate_edges_) {
    auto anchor = [&](int sid) {
      const State& st = state(sid);
      auto ids = st.node_ids();
      std::ostringstream a;
      if (ids.empty()) {
        a << "s" << sid << "anchor";
      } else {
        a << "s" << sid << "n" << ids.front();
      }
      return a.str();
    };
    os << "  " << anchor(e.src) << " -> " << anchor(e.dst)
       << " [ltail=cluster_s" << e.src << ", lhead=cluster_s" << e.dst
       << ", color=blue, label=" << quote(e.to_string()) << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string SDFG::dump() const {
  std::ostringstream os;
  os << "sdfg " << name_ << "\n";
  for (const auto& [name, d] : arrays_) {
    os << "  " << (d.transient ? "transient " : "array ") << name << ": "
       << dtype_name(d.dtype) << "[";
    for (size_t i = 0; i < d.shape.size(); ++i) {
      if (i) os << ", ";
      os << d.shape[i].to_string();
    }
    os << "]";
    if (d.storage != Storage::Default) os << " @" << storage_name(d.storage);
    if (d.lifetime == Lifetime::Persistent) os << " persistent";
    if (d.is_stream) os << " stream(" << d.stream_depth << ")";
    os << "\n";
  }
  for (int sid : state_order()) {
    const State& st = state(sid);
    os << "  state " << sid << " '" << st.label() << "'"
       << (sid == start_state_ ? " (start)" : "") << "\n";
    for (int nid : st.node_ids()) {
      const Node* n = st.node(nid);
      os << "    n" << nid << ": ";
      switch (n->kind) {
        case NodeKind::Access: os << "access "; break;
        case NodeKind::Tasklet: os << "tasklet "; break;
        case NodeKind::MapEntry: os << "map_entry "; break;
        case NodeKind::MapExit: os << "map_exit "; break;
        case NodeKind::Library: os << "library "; break;
        case NodeKind::NestedSDFG: os << "nested "; break;
      }
      os << n->label();
      if (const auto* t = dynamic_cast<const Tasklet*>(n)) {
        os << " :: " << t->output << " = " << t->code.to_string();
      } else if (const auto* m = dynamic_cast<const MapEntry*>(n)) {
        os << " :: " << schedule_name(m->schedule);
      } else if (const auto* l = dynamic_cast<const LibraryNode*>(n)) {
        os << " :: impl=" << l->implementation;
      }
      os << "\n";
    }
    for (const auto& e : st.edges()) {
      os << "    n" << e.src;
      if (!e.src_conn.empty()) os << "." << e.src_conn;
      os << " -> n" << e.dst;
      if (!e.dst_conn.empty()) os << "." << e.dst_conn;
      os << " : " << e.memlet.to_string() << "\n";
    }
  }
  for (const auto& e : istate_edges_) {
    os << "  edge " << e.src << " -> " << e.dst;
    std::string s = e.to_string();
    if (!s.empty()) os << " [" << s << "]";
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Reloadable serialization (S-expression text)
// ---------------------------------------------------------------------------
//
// Grammar (whitespace-separated; strings are double-quoted with \-escapes):
//   sdfg    := (sdfg "name" (symbols "s"*) array* (arg "a")* (start N)
//               state* iedge*)
//   array   := (array "name" dtype transient storage lifetime stream depth
//               (shape expr*))
//   state   := (state ID "label" node* edge*)
//   node    := (node ID nodebody)
//   edge    := (edge SRC "conn" DST "conn" memlet)
//   memlet  := none | (m "data" wcr dynamic (subset range*))
//   iedge   := (iedge SRC DST cond (assign "sym" expr)*)
//   range   := (r expr expr expr)
//   expr    := (c N) | (s "name") | (add expr+) | (mul expr+)
//            | (fdiv e e) | (emod e e) | (emin e e) | (emax e e)
//   code    := none | (num F) | (in "name") | (sym "name") | (OP code*)

namespace {

std::string quote_atom(const std::string& s) { return quote(s); }

// -- symbolic expressions ---------------------------------------------------

void write_expr(std::ostringstream& os, const sym::Expr& e) {
  using sym::ExprKind;
  switch (e.kind()) {
    case ExprKind::Const:
      os << "(c " << e.constant() << ")";
      return;
    case ExprKind::Symbol:
      os << "(s " << quote_atom(e.symbol_name()) << ")";
      return;
    default:
      break;
  }
  const char* tag = "?";
  switch (e.kind()) {
    case ExprKind::Add: tag = "add"; break;
    case ExprKind::Mul: tag = "mul"; break;
    case ExprKind::FloorDiv: tag = "fdiv"; break;
    case ExprKind::Mod: tag = "emod"; break;
    case ExprKind::Min: tag = "emin"; break;
    case ExprKind::Max: tag = "emax"; break;
    default: break;
  }
  os << "(" << tag;
  for (const auto& a : e.operands()) {
    os << " ";
    write_expr(os, a);
  }
  os << ")";
}

void write_range(std::ostringstream& os, const sym::Range& r) {
  os << "(r ";
  write_expr(os, r.begin);
  os << " ";
  write_expr(os, r.end);
  os << " ";
  write_expr(os, r.step);
  os << ")";
}

void write_subset(std::ostringstream& os, const sym::Subset& s) {
  os << "(subset";
  for (const auto& r : s.ranges()) {
    os << " ";
    write_range(os, r);
  }
  os << ")";
}

// -- tasklet code -----------------------------------------------------------

const char* code_op_name(CodeOp op) {
  switch (op) {
    case CodeOp::Const: return "num";
    case CodeOp::Input: return "in";
    case CodeOp::Sym: return "sym";
    case CodeOp::Add: return "add";
    case CodeOp::Sub: return "sub";
    case CodeOp::Mul: return "mul";
    case CodeOp::Div: return "div";
    case CodeOp::Pow: return "pow";
    case CodeOp::Mod: return "mod";
    case CodeOp::Min: return "min";
    case CodeOp::Max: return "max";
    case CodeOp::Neg: return "neg";
    case CodeOp::Abs: return "abs";
    case CodeOp::Exp: return "exp";
    case CodeOp::Log: return "log";
    case CodeOp::Sqrt: return "sqrt";
    case CodeOp::Sin: return "sin";
    case CodeOp::Cos: return "cos";
    case CodeOp::Tanh: return "tanh";
    case CodeOp::Floor: return "floor";
    case CodeOp::Lt: return "lt";
    case CodeOp::Le: return "le";
    case CodeOp::Gt: return "gt";
    case CodeOp::Ge: return "ge";
    case CodeOp::Eq: return "eq";
    case CodeOp::Ne: return "ne";
    case CodeOp::And: return "and";
    case CodeOp::Or: return "or";
    case CodeOp::Not: return "not";
    case CodeOp::Select: return "select";
  }
  return "?";
}

void write_code(std::ostringstream& os, const CodeExpr& c) {
  if (!c.valid()) {
    os << "none";
    return;
  }
  switch (c.op()) {
    case CodeOp::Const: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", c.value());
      os << "(num " << buf << ")";
      return;
    }
    case CodeOp::Input:
      os << "(in " << quote_atom(c.name()) << ")";
      return;
    case CodeOp::Sym:
      os << "(sym " << quote_atom(c.name()) << ")";
      return;
    default:
      break;
  }
  os << "(" << code_op_name(c.op());
  for (const auto& a : c.args()) {
    os << " ";
    write_code(os, a);
  }
  os << ")";
}

// -- graph ------------------------------------------------------------------

void write_memlet(std::ostringstream& os, const Memlet& m) {
  if (m.empty()) {
    os << "none";
    return;
  }
  os << "(m " << quote_atom(m.data) << " " << wcr_name(m.wcr) << " "
     << (m.dynamic ? 1 : 0) << " ";
  write_subset(os, m.subset);
  os << ")";
}

void write_sdfg(std::ostringstream& os, const SDFG& g);

void write_node(std::ostringstream& os, const State& st, int id) {
  const Node* n = st.node(id);
  os << "    (node " << id << " ";
  switch (n->kind) {
    case NodeKind::Access:
      os << "(access " << quote_atom(static_cast<const AccessNode*>(n)->data)
         << ")";
      break;
    case NodeKind::Tasklet: {
      const auto* t = static_cast<const Tasklet*>(n);
      os << "(tasklet " << quote_atom(t->name) << " " << quote_atom(t->output)
         << " (ins";
      for (const auto& in : t->inputs) os << " " << quote_atom(in);
      os << ") ";
      write_code(os, t->code);
      os << ")";
      break;
    }
    case NodeKind::MapEntry: {
      const auto* m = static_cast<const MapEntry*>(n);
      os << "(map_entry " << quote_atom(m->name) << " " << m->exit_node << " "
         << schedule_name(m->schedule) << " " << (m->omp_collapse ? 1 : 0)
         << " (params";
      for (const auto& p : m->params) os << " " << quote_atom(p);
      os << ") (range";
      for (const auto& r : m->range.ranges()) {
        os << " ";
        write_range(os, r);
      }
      os << "))";
      break;
    }
    case NodeKind::MapExit:
      os << "(map_exit " << static_cast<const MapExit*>(n)->entry_node << ")";
      break;
    case NodeKind::Library: {
      const auto* l = static_cast<const LibraryNode*>(n);
      os << "(library " << quote_atom(l->op) << " "
         << quote_atom(l->implementation);
      for (const auto& [k, v] : l->attrs)
        os << " (attr " << quote_atom(k) << " " << quote_atom(v) << ")";
      for (const auto& [k, v] : l->sym_attrs) {
        os << " (sattr " << quote_atom(k) << " ";
        write_expr(os, v);
        os << ")";
      }
      os << ")";
      break;
    }
    case NodeKind::NestedSDFG: {
      const auto* nn = static_cast<const NestedSDFGNode*>(n);
      os << "(nested (ins";
      for (const auto& c : nn->in_connectors) os << " " << quote_atom(c);
      os << ") (outs";
      for (const auto& c : nn->out_connectors) os << " " << quote_atom(c);
      os << ")";
      for (const auto& [k, v] : nn->symbol_mapping) {
        os << " (map " << quote_atom(k) << " ";
        write_expr(os, v);
        os << ")";
      }
      os << " ";
      write_sdfg(os, *nn->sdfg);
      os << ")";
      break;
    }
  }
  os << ")\n";
}

void write_sdfg(std::ostringstream& os, const SDFG& g) {
  os << "(sdfg " << quote_atom(g.name()) << "\n";
  os << "  (symbols";
  for (const auto& s : g.symbols()) os << " " << quote_atom(s);
  os << ")\n";
  for (const auto& [name, d] : g.arrays()) {
    os << "  (array " << quote_atom(name) << " " << dtype_name(d.dtype) << " "
       << (d.transient ? 1 : 0) << " " << storage_name(d.storage) << " "
       << (d.lifetime == Lifetime::Persistent ? "Persistent" : "Scope") << " "
       << (d.is_stream ? 1 : 0) << " " << d.stream_depth << " (shape";
    for (const auto& s : d.shape) {
      os << " ";
      write_expr(os, s);
    }
    os << "))\n";
  }
  for (const auto& a : g.arg_names()) os << "  (arg " << quote_atom(a) << ")\n";
  os << "  (start " << g.start_state() << ")\n";
  for (int sid : g.state_ids()) {
    const State& st = g.state(sid);
    os << "  (state " << sid << " " << quote_atom(st.label()) << "\n";
    for (int nid : st.node_ids()) write_node(os, st, nid);
    for (const auto& e : st.edges()) {
      os << "    (edge " << e.src << " " << quote_atom(e.src_conn) << " "
         << e.dst << " " << quote_atom(e.dst_conn) << " ";
      write_memlet(os, e.memlet);
      os << ")\n";
    }
    os << "  )\n";
  }
  for (const auto& e : g.interstate_edges()) {
    os << "  (iedge " << e.src << " " << e.dst << " ";
    write_code(os, e.condition);
    for (const auto& [k, v] : e.assignments) {
      os << " (assign " << quote_atom(k) << " ";
      write_expr(os, v);
      os << ")";
    }
    os << ")\n";
  }
  os << ")\n";
}

// -- parser -----------------------------------------------------------------

// Malformed or truncated input yields a located diag::DiagError (code,
// line:col of the offending byte, expected-token message) instead of a
// crash or a silent mis-parse.
struct Parser {
  const std::string& text;
  size_t pos = 0;
  int depth = 0;  // guards against stack overflow on pathological nesting

  static constexpr int kMaxDepth = 200;

  explicit Parser(const std::string& t) : text(t) {}

  /// 1-based line/col of an offset into the text.
  std::pair<int, int> line_col(size_t at) const {
    int line = 1, col = 1;
    for (size_t i = 0; i < at && i < text.size(); ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return {line, col};
  }

  [[noreturn]] void fail(const char* code, const std::string& msg,
                         size_t at) const {
    auto [line, col] = line_col(at);
    diag::Diagnostic d;
    d.code = code;
    d.line = line;
    d.col = col;
    d.message = msg;
    std::ostringstream os;
    os << "load_sdfg: " << msg << " at " << line << ":" << col << " (offset "
       << at << ") [" << code << "]";
    throw diag::DiagError(std::move(d), os.str());
  }
  [[noreturn]] void fail(const char* code, const std::string& msg) const {
    fail(code, msg, pos);
  }

  std::string describe_here() const {
    if (pos >= text.size()) return "end of input";
    return std::string("'") + text[pos] + "'";
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace((unsigned char)text[pos])) ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("E401", "unexpected end of input");
    return text[pos];
  }
  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  void expect(char c) {
    if (peek() != c)
      fail("E402", std::string("expected '") + c + "', got " + describe_here());
    ++pos;
  }
  /// Unquoted atom: identifiers, numbers, tags.
  std::string atom() {
    skip_ws();
    size_t start = pos;
    while (pos < text.size() && !std::isspace((unsigned char)text[pos]) &&
           text[pos] != '(' && text[pos] != ')' && text[pos] != '"') {
      ++pos;
    }
    if (pos == start) fail("E402", "expected atom, got " + describe_here());
    return text.substr(start, pos - start);
  }
  std::string string() {
    expect('"');
    size_t start = pos - 1;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) fail("E401", "unterminated string", start);
    ++pos;
    return out;
  }
  int64_t integer() {
    skip_ws();
    size_t at = pos;
    std::string a = atom();
    char* end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(a.c_str(), &end, 10);
    if (end != a.c_str() + a.size() || a.empty() || errno == ERANGE)
      fail("E404", "expected integer, got '" + a + "'", at);
    return v;
  }
  double real() {
    skip_ws();
    size_t at = pos;
    std::string a = atom();
    char* end = nullptr;
    double v = std::strtod(a.c_str(), &end);
    if (end != a.c_str() + a.size() || a.empty())
      fail("E404", "expected number, got '" + a + "'", at);
    return v;
  }
  /// Opens a list and returns its tag: "(tag ..."
  std::string open() {
    expect('(');
    if (++depth > kMaxDepth) fail("E404", "nesting too deep");
    return atom();
  }
  bool list_done() { return peek() == ')'; }
  void close() {
    expect(')');
    --depth;
  }
};

sym::Expr parse_expr(Parser& p) {
  p.skip_ws();
  size_t at = p.pos;
  std::string tag = p.open();
  sym::Expr out;
  if (tag == "c") {
    out = sym::Expr(p.integer());
  } else if (tag == "s") {
    out = sym::Expr::symbol(p.string());
  } else if (tag == "add" || tag == "mul") {
    bool mul = tag == "mul";
    out = sym::Expr(int64_t{mul ? 1 : 0});
    while (!p.list_done()) {
      sym::Expr a = parse_expr(p);
      out = mul ? out * a : out + a;
    }
  } else {
    if (tag != "fdiv" && tag != "emod" && tag != "emin" && tag != "emax")
      p.fail("E403", "unknown expression tag '" + tag + "'", at);
    sym::Expr a = parse_expr(p);
    sym::Expr b = parse_expr(p);
    if (tag == "fdiv") out = floordiv(a, b);
    else if (tag == "emod") out = mod(a, b);
    else if (tag == "emin") out = min(a, b);
    else out = max(a, b);
  }
  p.close();
  return out;
}

sym::Range parse_range(Parser& p) {
  p.skip_ws();
  size_t at = p.pos;
  std::string tag = p.open();
  if (tag != "r") p.fail("E402", "expected range (r ...), got '" + tag + "'", at);
  sym::Expr b = parse_expr(p);
  sym::Expr e = parse_expr(p);
  sym::Expr s = parse_expr(p);
  p.close();
  return sym::Range(b, e, s);
}

sym::Subset parse_subset(Parser& p) {
  p.skip_ws();
  size_t at = p.pos;
  std::string tag = p.open();
  if (tag != "subset")
    p.fail("E402", "expected subset (subset ...), got '" + tag + "'", at);
  std::vector<sym::Range> rs;
  while (!p.list_done()) rs.push_back(parse_range(p));
  p.close();
  return sym::Subset(std::move(rs));
}

CodeOp code_op_from(Parser& p, const std::string& name, size_t at) {
  static const std::map<std::string, CodeOp> table = {
      {"num", CodeOp::Const}, {"in", CodeOp::Input},  {"sym", CodeOp::Sym},
      {"add", CodeOp::Add},   {"sub", CodeOp::Sub},   {"mul", CodeOp::Mul},
      {"div", CodeOp::Div},   {"pow", CodeOp::Pow},   {"mod", CodeOp::Mod},
      {"min", CodeOp::Min},   {"max", CodeOp::Max},   {"neg", CodeOp::Neg},
      {"abs", CodeOp::Abs},   {"exp", CodeOp::Exp},   {"log", CodeOp::Log},
      {"sqrt", CodeOp::Sqrt}, {"sin", CodeOp::Sin},   {"cos", CodeOp::Cos},
      {"tanh", CodeOp::Tanh}, {"floor", CodeOp::Floor}, {"lt", CodeOp::Lt},
      {"le", CodeOp::Le},     {"gt", CodeOp::Gt},     {"ge", CodeOp::Ge},
      {"eq", CodeOp::Eq},     {"ne", CodeOp::Ne},     {"and", CodeOp::And},
      {"or", CodeOp::Or},     {"not", CodeOp::Not},   {"select", CodeOp::Select},
  };
  auto it = table.find(name);
  if (it == table.end()) p.fail("E403", "unknown code op '" + name + "'", at);
  return it->second;
}

CodeExpr parse_code(Parser& p) {
  p.skip_ws();
  size_t at = p.pos;
  if (p.peek() != '(') {
    std::string a = p.atom();
    if (a != "none")
      p.fail("E402", "expected code expression, got '" + a + "'", at);
    return CodeExpr();
  }
  std::string tag = p.open();
  CodeOp op = code_op_from(p, tag, at);
  CodeExpr out;
  switch (op) {
    case CodeOp::Const: out = CodeExpr::constant(p.real()); break;
    case CodeOp::Input: out = CodeExpr::input(p.string()); break;
    case CodeOp::Sym: out = CodeExpr::symbol(p.string()); break;
    default: {
      std::vector<CodeExpr> args;
      while (!p.list_done()) args.push_back(parse_code(p));
      if (args.size() == 1) {
        out = CodeExpr::unary(op, args[0]);
      } else if (args.size() == 2) {
        out = CodeExpr::binary(op, args[0], args[1]);
      } else if (args.size() == 3 && op == CodeOp::Select) {
        out = CodeExpr::select(args[0], args[1], args[2]);
      } else {
        p.fail("E404", "op '" + tag + "' with " + std::to_string(args.size()) +
                           " args",
               at);
      }
      p.close();
      return out;
    }
  }
  p.close();
  return out;
}

template <typename Enum>
Enum enum_from(Parser& p, const char* (*printer)(Enum),
               std::initializer_list<Enum> values, const char* what) {
  p.skip_ws();
  size_t at = p.pos;
  std::string name = p.atom();
  for (Enum v : values) {
    if (name == printer(v)) return v;
  }
  p.fail("E403", std::string("unknown ") + what + " '" + name + "'", at);
}

Memlet parse_memlet(Parser& p) {
  p.skip_ws();
  size_t at = p.pos;
  if (p.peek() != '(') {
    std::string a = p.atom();
    if (a != "none") p.fail("E402", "expected memlet, got '" + a + "'", at);
    return Memlet();
  }
  std::string tag = p.open();
  if (tag != "m") p.fail("E402", "expected memlet (m ...), got '" + tag + "'", at);
  Memlet m;
  m.data = p.string();
  m.wcr = enum_from<WCR>(p, wcr_name,
                         {WCR::None, WCR::Sum, WCR::Prod, WCR::Min, WCR::Max},
                         "wcr");
  m.dynamic = p.integer() != 0;
  m.subset = parse_subset(p);
  p.close();
  return m;
}

std::unique_ptr<SDFG> parse_sdfg(Parser& p);

/// Parses one (node ID body) form. `next_id` tracks the index the next
/// append will land on; holes left by removed nodes in the original graph
/// are padded with throwaway placeholders so ids are preserved.
void parse_node(Parser& p, State& st, int& next_id) {
  p.skip_ws();
  size_t id_at = p.pos;
  int id = static_cast<int>(p.integer());
  if (id < next_id)
    p.fail("E407", "node id " + std::to_string(id) +
                       " duplicates or reorders an earlier node (next is " +
                       std::to_string(next_id) + ")",
           id_at);
  while (next_id < id) {
    st.remove_node(st.add_access("__load_pad"));
    ++next_id;
  }
  p.skip_ws();
  size_t at = p.pos;
  std::string tag = p.open();
  if (tag == "access") {
    st.add_access(p.string());
  } else if (tag == "tasklet") {
    std::string name = p.string();
    std::string output = p.string();
    std::string ins_tag = p.open();
    if (ins_tag != "ins") p.fail("E402", "expected (ins ...) in tasklet");
    std::vector<std::string> inputs;
    while (!p.list_done()) inputs.push_back(p.string());
    p.close();
    CodeExpr code = parse_code(p);
    int tid = st.add_tasklet(name, std::move(inputs), std::move(code));
    st.node_as<Tasklet>(tid)->output = output;
  } else if (tag == "map_entry") {
    auto me = std::make_unique<MapEntry>(p.string(), std::vector<std::string>{},
                                         sym::Subset{});
    me->exit_node = static_cast<int>(p.integer());
    me->schedule = enum_from<Schedule>(
        p, schedule_name,
        {Schedule::Sequential, Schedule::CPUParallel, Schedule::GPUDevice,
         Schedule::FPGAPipeline},
        "schedule");
    me->omp_collapse = p.integer() != 0;
    std::string params_tag = p.open();
    if (params_tag != "params") p.fail("E402", "expected (params ...) in map_entry");
    while (!p.list_done()) me->params.push_back(p.string());
    p.close();
    std::string range_tag = p.open();
    if (range_tag != "range") p.fail("E402", "expected (range ...) in map_entry");
    std::vector<sym::Range> rs;
    while (!p.list_done()) rs.push_back(parse_range(p));
    p.close();
    me->range = sym::Subset(std::move(rs));
    st.add_node(std::move(me));
  } else if (tag == "map_exit") {
    auto mx = std::make_unique<MapExit>();
    mx->entry_node = static_cast<int>(p.integer());
    st.add_node(std::move(mx));
  } else if (tag == "library") {
    auto lib = std::make_unique<LibraryNode>(p.string());
    lib->implementation = p.string();
    while (!p.list_done()) {
      std::string sub = p.open();
      if (sub == "attr") {
        std::string k = p.string();
        lib->attrs[k] = p.string();
      } else if (sub == "sattr") {
        std::string k = p.string();
        lib->sym_attrs[k] = parse_expr(p);
      } else {
        p.fail("E403", "unknown library field '" + sub + "'");
      }
      p.close();
    }
    st.add_node(std::move(lib));
  } else if (tag == "nested") {
    std::set<std::string> ins, outs;
    sym::SubstMap symmap;
    std::string ins_tag = p.open();
    if (ins_tag != "ins") p.fail("E402", "expected (ins ...) in nested SDFG");
    while (!p.list_done()) ins.insert(p.string());
    p.close();
    std::string outs_tag = p.open();
    if (outs_tag != "outs") p.fail("E402", "expected (outs ...) in nested SDFG");
    while (!p.list_done()) outs.insert(p.string());
    p.close();
    while (p.peek() == '(') {
      // Either a (map sym expr) entry or the nested (sdfg ...) itself.
      size_t mark = p.pos;
      std::string sub = p.open();
      if (sub == "map") {
        std::string k = p.string();
        symmap[k] = parse_expr(p);
        p.close();
        continue;
      }
      if (sub != "sdfg") p.fail("E403", "unknown nested field '" + sub + "'");
      p.pos = mark;
      --p.depth;  // re-parsed below by parse_sdfg
      break;
    }
    auto callee = parse_sdfg(p);
    auto node = std::make_unique<NestedSDFGNode>(std::shared_ptr<SDFG>(
        std::move(callee)));
    node->in_connectors = std::move(ins);
    node->out_connectors = std::move(outs);
    node->symbol_mapping = std::move(symmap);
    st.add_node(std::move(node));
  } else {
    p.fail("E403", "unknown node tag '" + tag + "'", at);
  }
  ++next_id;
  p.close();  // closes the node body
  p.close();  // closes (node ...)
}

std::unique_ptr<SDFG> parse_sdfg(Parser& p) {
  p.skip_ws();
  size_t sdfg_at = p.pos;
  std::string tag = p.open();
  if (tag != "sdfg")
    p.fail("E402", "expected (sdfg ...), got '" + tag + "'", sdfg_at);
  auto g = std::make_unique<SDFG>(p.string());
  int start = 0;
  size_t start_at = 0;
  int next_state = 0;
  while (!p.list_done()) {
    p.skip_ws();
    size_t section_at = p.pos;
    std::string section = p.open();
    if (section == "symbols") {
      while (!p.list_done()) g->add_symbol(p.string());
    } else if (section == "array") {
      p.skip_ws();
      size_t name_at = p.pos;
      std::string name = p.string();
      if (g->has_array(name))
        p.fail("E405", "duplicate array name '" + name + "'", name_at);
      DType dtype = enum_from<DType>(
          p, dtype_name,
          {DType::f32, DType::f64, DType::i32, DType::i64, DType::b8},
          "dtype");
      bool transient = p.integer() != 0;
      Storage storage = enum_from<Storage>(
          p, storage_name,
          {Storage::Default, Storage::Register, Storage::CPUStack,
           Storage::CPUHeap, Storage::GPUGlobal, Storage::GPUShared,
           Storage::FPGAGlobal, Storage::FPGALocal},
          "storage");
      std::string lifetime = p.atom();
      bool is_stream = p.integer() != 0;
      int64_t depth = p.integer();
      std::string shape_tag = p.open();
      if (shape_tag != "shape") p.fail("E402", "expected (shape ...) in array");
      std::vector<sym::Expr> shape;
      while (!p.list_done()) shape.push_back(parse_expr(p));
      p.close();
      DataDesc& d = g->add_array(name, dtype, std::move(shape), transient);
      d.storage = storage;
      d.lifetime =
          lifetime == "Persistent" ? Lifetime::Persistent : Lifetime::Scope;
      d.is_stream = is_stream;
      d.stream_depth = depth;
    } else if (section == "arg") {
      g->add_arg(p.string());
    } else if (section == "start") {
      p.skip_ws();
      start_at = p.pos;
      start = static_cast<int>(p.integer());
    } else if (section == "state") {
      p.skip_ws();
      size_t sid_at = p.pos;
      int sid = static_cast<int>(p.integer());
      if (sid < next_state)
        p.fail("E407", "state id " + std::to_string(sid) +
                           " duplicates or reorders an earlier state (next is " +
                           std::to_string(next_state) + ")",
               sid_at);
      while (next_state < sid) {
        g->add_state("__load_pad");
        g->remove_state(next_state++);
      }
      State& st = g->add_state(p.string());
      ++next_state;
      int next_node = 0;
      while (p.peek() == '(') {
        p.skip_ws();
        size_t sub_at = p.pos;
        std::string sub = p.open();
        if (sub == "node") {
          parse_node(p, st, next_node);
        } else if (sub == "edge") {
          p.skip_ws();
          size_t edge_at = p.pos;
          int src = static_cast<int>(p.integer());
          std::string src_conn = p.string();
          int dst = static_cast<int>(p.integer());
          std::string dst_conn = p.string();
          Memlet m = parse_memlet(p);
          if (src < 0 || src >= next_node || !st.alive(src))
            p.fail("E406", "edge references nonexistent source node " +
                               std::to_string(src),
                   edge_at);
          if (dst < 0 || dst >= next_node || !st.alive(dst))
            p.fail("E406", "edge references nonexistent destination node " +
                               std::to_string(dst),
                   edge_at);
          st.add_edge(src, src_conn, dst, dst_conn, std::move(m));
          p.close();
        } else {
          p.fail("E403", "unknown state field '" + sub + "'", sub_at);
        }
      }
    } else if (section == "iedge") {
      p.skip_ws();
      size_t iedge_at = p.pos;
      int src = static_cast<int>(p.integer());
      int dst = static_cast<int>(p.integer());
      CodeExpr cond = parse_code(p);
      std::vector<std::pair<std::string, sym::Expr>> assignments;
      while (!p.list_done()) {
        std::string sub = p.open();
        if (sub != "assign") p.fail("E402", "expected (assign ...) in iedge");
        std::string k = p.string();
        assignments.emplace_back(k, parse_expr(p));
        p.close();
      }
      if (!g->state_alive(src))
        p.fail("E409", "interstate edge references nonexistent source state " +
                           std::to_string(src),
               iedge_at);
      if (!g->state_alive(dst))
        p.fail("E409",
               "interstate edge references nonexistent destination state " +
                   std::to_string(dst),
               iedge_at);
      g->add_interstate_edge(src, dst, std::move(cond),
                             std::move(assignments));
    } else {
      p.fail("E403", "unknown section '" + section + "'", section_at);
    }
    p.close();
  }
  p.close();
  if (next_state > 0 && !g->state_alive(start))
    p.fail("E409", "start state " + std::to_string(start) + " does not exist",
           start_at ? start_at : sdfg_at);
  g->set_start_state(start);
  return g;
}

}  // namespace

std::string SDFG::save() const {
  std::ostringstream os;
  write_sdfg(os, *this);
  return os.str();
}

std::unique_ptr<SDFG> load_sdfg(const std::string& text) {
  Parser p(text);
  std::unique_ptr<SDFG> g;
  try {
    g = parse_sdfg(p);
  } catch (const diag::DiagError&) {
    throw;
  } catch (const Error& e) {
    // Graph-construction errors (e.g. State::add_edge connector checks)
    // surfacing through the loader become located diagnostics too.
    p.fail("E400", e.what());
  }
  if (!p.at_end()) p.fail("E408", "trailing input after (sdfg ...)");
  return g;
}

std::unique_ptr<SDFG> load_sdfg(const std::string& text,
                                diag::DiagSink& sink) {
  try {
    return load_sdfg(text);
  } catch (const diag::DiagError& e) {
    sink.report(e.diagnostic());
    return nullptr;
  }
}

}  // namespace dace::ir
