// Stateful Dataflow multiGraph (SDFG) intermediate representation.
//
// Mirrors the IR of the paper (Section 2.3, Table 1): an SDFG is a state
// machine whose states are dataflow multigraphs.  Dataflow nodes are data
// Access nodes, Tasklets (stateless scalar computations), Map entry/exit
// scopes (parametric parallelism), Library nodes (external operations such
// as MatMul), and Nested SDFGs.  Edges carry memlets describing exactly
// which subset of a data container moves.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/code_expr.hpp"
#include "ir/types.hpp"
#include "symbolic/subset.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::diag {
class DiagSink;
}

namespace dace::ir {

class SDFG;
class State;

// ---------------------------------------------------------------------------
// Data descriptors
// ---------------------------------------------------------------------------

/// Description of a data container (array, scalar, or stream).
struct DataDesc {
  std::string name;
  DType dtype = DType::f64;
  std::vector<sym::Expr> shape;  // empty = scalar
  bool transient = false;        // local to the SDFG (not an argument)
  Storage storage = Storage::Default;
  Lifetime lifetime = Lifetime::Scope;
  bool is_stream = false;        // FIFO channel (FPGA streaming)
  int64_t stream_depth = 0;      // FIFO capacity when is_stream

  bool is_scalar() const { return shape.empty() && !is_stream; }
  size_t rank() const { return shape.size(); }
  /// Total element count.
  sym::Expr num_elements() const {
    sym::Expr n(int64_t{1});
    for (const auto& s : shape) n = n * s;
    return n;
  }
  /// Row-major strides.
  std::vector<sym::Expr> strides() const {
    std::vector<sym::Expr> st(shape.size(), sym::Expr(int64_t{1}));
    for (size_t d = shape.size(); d-- > 1;) st[d - 1] = st[d] * shape[d];
    return st;
  }
};

// ---------------------------------------------------------------------------
// Memlets
// ---------------------------------------------------------------------------

/// A unit of data movement: which subset of which container flows along an
/// edge, and how concurrent writes are resolved (WCR).
struct Memlet {
  std::string data;     // container name; empty = "no data" ordering edge
  sym::Subset subset;   // accessed subset
  WCR wcr = WCR::None;  // write-conflict resolution for write memlets
  bool dynamic = false; // volume not statically known

  Memlet() = default;
  Memlet(std::string d, sym::Subset s)
      : data(std::move(d)), subset(std::move(s)) {}
  Memlet(std::string d, sym::Subset s, WCR w)
      : data(std::move(d)), subset(std::move(s)), wcr(w) {}

  bool empty() const { return data.empty(); }
  sym::Expr volume() const { return subset.num_elements(); }
  std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Dataflow nodes
// ---------------------------------------------------------------------------

enum class NodeKind { Access, Tasklet, MapEntry, MapExit, Library, NestedSDFG };

struct Node {
  NodeKind kind;
  /// Per-node instrumentation (paper-style InstrumentationType attribute);
  /// honored by the executor, Tier-0 VM and Tier-1 native dispatch.  Not
  /// serialized: a measurement setting, not program semantics.
  Instrument instrument = Instrument::Off;
  explicit Node(NodeKind k) : kind(k) {}
  virtual ~Node() = default;
  virtual std::unique_ptr<Node> clone() const = 0;
  virtual std::string label() const = 0;
};

/// Oval access node: a read/write point of a data container.
struct AccessNode final : Node {
  std::string data;
  explicit AccessNode(std::string d)
      : Node(NodeKind::Access), data(std::move(d)) {}
  std::unique_ptr<Node> clone() const override {
    auto a = std::make_unique<AccessNode>(data);
    a->instrument = instrument;
    return a;
  }
  std::string label() const override { return data; }
};

/// Octagonal tasklet: one scalar output computed from scalar inputs.
struct Tasklet final : Node {
  std::string name;
  std::vector<std::string> inputs;  // input connector names
  std::string output = "__out";     // single output connector
  CodeExpr code;

  Tasklet(std::string n, std::vector<std::string> ins, CodeExpr c)
      : Node(NodeKind::Tasklet),
        name(std::move(n)),
        inputs(std::move(ins)),
        code(std::move(c)) {}
  std::unique_ptr<Node> clone() const override {
    auto t = std::make_unique<Tasklet>(name, inputs, code);
    t->output = output;
    t->instrument = instrument;
    return t;
  }
  std::string label() const override { return name; }
};

/// Map scope entry: N-dimensional parallel iteration space.
/// Connectors: "IN_<x>" on the entry's input side pair with "OUT_<x>" on
/// its inside; the exit mirrors this for outputs.
struct MapEntry final : Node {
  std::string name;
  std::vector<std::string> params;
  sym::Subset range;  // one Range per parameter
  Schedule schedule = Schedule::Sequential;
  bool omp_collapse = false;  // CPU: collapse nested dims (Section 3.1)
  int exit_node = -1;         // paired MapExit id

  MapEntry(std::string n, std::vector<std::string> p, sym::Subset r)
      : Node(NodeKind::MapEntry),
        name(std::move(n)),
        params(std::move(p)),
        range(std::move(r)) {}
  std::unique_ptr<Node> clone() const override {
    auto m = std::make_unique<MapEntry>(name, params, range);
    m->schedule = schedule;
    m->omp_collapse = omp_collapse;
    m->exit_node = exit_node;
    m->instrument = instrument;
    return m;
  }
  std::string label() const override;
};

struct MapExit final : Node {
  int entry_node = -1;  // paired MapEntry id
  MapExit() : Node(NodeKind::MapExit) {}
  std::unique_ptr<Node> clone() const override {
    auto m = std::make_unique<MapExit>();
    m->entry_node = entry_node;
    m->instrument = instrument;
    return m;
  }
  std::string label() const override { return "map_exit"; }
};

/// Library node: a call to an external operation (MatMul, Reduce, ...,
/// and the distributed communication ops of Section 4). `op` selects the
/// operation; `implementation` selects the expansion (Section 3.2).
struct LibraryNode final : Node {
  std::string op;
  std::string implementation = "auto";
  std::map<std::string, std::string> attrs;        // string attributes
  std::map<std::string, sym::Expr> sym_attrs;      // symbolic attributes

  explicit LibraryNode(std::string o)
      : Node(NodeKind::Library), op(std::move(o)) {}
  std::unique_ptr<Node> clone() const override {
    auto l = std::make_unique<LibraryNode>(op);
    l->implementation = implementation;
    l->attrs = attrs;
    l->sym_attrs = sym_attrs;
    l->instrument = instrument;
    return l;
  }
  std::string label() const override { return op; }
};

/// Nested SDFG node: a call to another data-centric program.
struct NestedSDFGNode final : Node {
  std::shared_ptr<SDFG> sdfg;  // shared: clones share the callee
  // Connector name == inner container name.
  std::set<std::string> in_connectors;
  std::set<std::string> out_connectors;
  sym::SubstMap symbol_mapping;  // inner symbol -> outer expression

  explicit NestedSDFGNode(std::shared_ptr<SDFG> s)
      : Node(NodeKind::NestedSDFG), sdfg(std::move(s)) {}
  std::unique_ptr<Node> clone() const override;
  std::string label() const override;
};

// ---------------------------------------------------------------------------
// State (dataflow multigraph)
// ---------------------------------------------------------------------------

struct Edge {
  int src = -1;
  std::string src_conn;
  int dst = -1;
  std::string dst_conn;
  Memlet memlet;
};

/// A state: pure dataflow, no control dependencies inside (Section 2.3).
class State {
 public:
  explicit State(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  void set_label(std::string l) { label_ = std::move(l); }

  /// State-level instrumentation: Timer wraps the whole state execution in
  /// one span.  Only honored when set explicitly (the DACE_INSTRUMENT
  /// process default applies to launch-granularity nodes, not states).
  Instrument instrument = Instrument::Off;

  // -- node management ------------------------------------------------------
  int add_node(std::unique_ptr<Node> n);
  int add_access(const std::string& data);
  int add_tasklet(const std::string& name, std::vector<std::string> inputs,
                  CodeExpr code);
  /// Adds a paired MapEntry/MapExit; returns {entry, exit}.
  std::pair<int, int> add_map(const std::string& name,
                              std::vector<std::string> params,
                              sym::Subset range,
                              Schedule sched = Schedule::Sequential);
  int add_library(const std::string& op);
  int add_nested(std::shared_ptr<SDFG> sdfg);

  Node* node(int id) { return nodes_.at(id).get(); }
  const Node* node(int id) const { return nodes_.at(id).get(); }
  bool alive(int id) const {
    return id >= 0 && id < (int)nodes_.size() && nodes_[id] != nullptr;
  }
  template <typename T>
  T* node_as(int id) {
    return dynamic_cast<T*>(node(id));
  }
  template <typename T>
  const T* node_as(int id) const {
    return dynamic_cast<const T*>(node(id));
  }

  /// Move all nodes and edges of `other` into this state; returns the id
  /// offset added to other's node ids. `other` is left empty.
  int absorb(State& other);
  /// Redirect all edges touching `from` to `to` instead.
  void redirect_node(int from, int to);
  /// True if a directed path from `a` to `b` exists.
  bool has_path(int a, int b) const;

  /// Remove a node (must have no incident edges).
  void remove_node(int id);
  /// Remove a node together with all incident edges.
  void remove_node_and_edges(int id);

  /// Live node ids.
  std::vector<int> node_ids() const;
  int num_nodes() const;

  // -- edge management -------------------------------------------------------
  void add_edge(int src, const std::string& src_conn, int dst,
                const std::string& dst_conn, Memlet memlet);
  void remove_edge(size_t index);
  void remove_edges_if(const std::function<bool(const Edge&)>& pred);

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }
  std::vector<size_t> in_edge_ids(int node) const;
  std::vector<size_t> out_edge_ids(int node) const;
  std::vector<const Edge*> in_edges(int node) const;
  std::vector<const Edge*> out_edges(int node) const;
  int in_degree(int node) const;
  int out_degree(int node) const;

  // -- structure queries -----------------------------------------------------
  /// Topological order of live nodes; throws on cycles.
  std::vector<int> topological_order() const;
  /// Source (no in-edges) and sink (no out-edges) access nodes.
  std::vector<int> source_nodes() const;
  std::vector<int> sink_nodes() const;
  /// All nodes strictly inside a map scope (between entry and its exit).
  std::vector<int> scope_nodes(int map_entry) const;
  /// Innermost map entry containing the node, or -1 if top-level.
  int scope_of(int node) const;

  /// Per-container read/write subsets in this state (union approximated by
  /// the list of individual memlets).
  struct AccessSets {
    std::map<std::string, std::vector<sym::Subset>> reads, writes;
  };
  AccessSets access_sets() const;

 private:
  std::string label_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Edge> edges_;

  friend class SDFG;
};

// ---------------------------------------------------------------------------
// SDFG
// ---------------------------------------------------------------------------

/// Interstate edge: control flow with condition and symbol assignments.
struct InterstateEdge {
  int src = -1;
  int dst = -1;
  CodeExpr condition;                                  // invalid => true
  std::vector<std::pair<std::string, sym::Expr>> assignments;

  bool unconditional() const { return !condition.valid(); }
  std::string to_string() const;
};

class SDFG {
 public:
  explicit SDFG(std::string name) : name_(std::move(name)) {}

  SDFG(const SDFG&) = delete;
  SDFG& operator=(const SDFG&) = delete;

  /// Deep copy (nested SDFGs are shared, as they are immutable callees
  /// until inlined -- inlining clones them first).
  std::unique_ptr<SDFG> clone() const;

  /// Exchange full contents with another SDFG.  Used by the transactional
  /// pipeline to roll a graph back to a pre-pass snapshot in O(1).
  void swap(SDFG& other) noexcept;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // -- containers ------------------------------------------------------------
  DataDesc& add_array(const std::string& name, DType dtype,
                      std::vector<sym::Expr> shape, bool transient = false);
  DataDesc& add_scalar(const std::string& name, DType dtype,
                       bool transient = false);
  DataDesc& add_stream(const std::string& name, DType dtype, int64_t depth);
  /// Add a transient with a unique name derived from `prefix`.
  DataDesc& add_temp(const std::string& prefix, DType dtype,
                     std::vector<sym::Expr> shape);
  bool has_array(const std::string& name) const {
    return arrays_.count(name) > 0;
  }
  DataDesc& array(const std::string& name);
  const DataDesc& array(const std::string& name) const;
  void remove_array(const std::string& name);
  void rename_array(const std::string& old_name, const std::string& new_name);
  const std::map<std::string, DataDesc>& arrays() const { return arrays_; }

  /// Ordered argument list (non-transient containers, call order).
  const std::vector<std::string>& arg_names() const { return arg_names_; }
  void add_arg(const std::string& name) { arg_names_.push_back(name); }

  // -- symbols ---------------------------------------------------------------
  void add_symbol(const std::string& s) { symbols_.insert(s); }
  const std::set<std::string>& symbols() const { return symbols_; }
  bool has_symbol(const std::string& s) const { return symbols_.count(s) > 0; }

  // -- states ----------------------------------------------------------------
  State& add_state(const std::string& label, bool is_start = false);
  /// Insert a state and redirect control flow: src -> new -> dst.
  State& add_state_between(int src, int dst, const std::string& label);
  int num_states() const;
  State& state(int id) { return *states_.at(id); }
  const State& state(int id) const { return *states_.at(id); }
  bool state_alive(int id) const {
    return id >= 0 && id < (int)states_.size() && states_[id] != nullptr;
  }
  std::vector<int> state_ids() const;
  void remove_state(int id);
  int start_state() const { return start_state_; }
  void set_start_state(int id) { start_state_ = id; }
  /// Index of a state object within this SDFG, or -1.
  int state_id(const State* s) const;

  void add_interstate_edge(int src, int dst, CodeExpr condition = CodeExpr(),
                           std::vector<std::pair<std::string, sym::Expr>>
                               assignments = {});
  std::vector<InterstateEdge>& interstate_edges() { return istate_edges_; }
  const std::vector<InterstateEdge>& interstate_edges() const {
    return istate_edges_;
  }
  std::vector<size_t> out_interstate(int state) const;
  std::vector<size_t> in_interstate(int state) const;

  /// Topological-ish order of states following control flow (BFS from
  /// start; unreachable states appended).
  std::vector<int> state_order() const;

  /// A fresh container name with the given prefix.
  std::string unique_name(const std::string& prefix);

  /// Free symbols: referenced symbols (shapes, ranges, conditions) that are
  /// never assigned on interstate edges.
  std::set<std::string> free_symbols() const;

  /// Consistency checks; throws dace::Error on malformed graphs.
  void validate() const;

  /// Graphviz rendering of all states and the control-flow skeleton.
  std::string to_dot() const;
  /// Stable textual dump for golden tests.
  std::string dump() const;
  /// Reloadable serialization (S-expression text; see load_sdfg).
  std::string save() const;

 private:
  std::string name_;
  std::map<std::string, DataDesc> arrays_;
  std::vector<std::string> arg_names_;
  std::set<std::string> symbols_;
  std::vector<std::unique_ptr<State>> states_;
  std::vector<InterstateEdge> istate_edges_;
  int start_state_ = 0;
  int name_counter_ = 0;
};

/// Parse the serialization produced by SDFG::save() back into an SDFG
/// (round-trip: load_sdfg(g.save())->dump() == g.dump()). Used by the
/// sdfg-lint tool to analyze graphs offline. Malformed or truncated input
/// raises diag::DiagError (a dace::Error) with a stable E4xx code and the
/// line:col of the offending token; duplicate array names and dangling
/// node/state references are rejected.
std::unique_ptr<SDFG> load_sdfg(const std::string& text);

/// Recovering variant: on malformed input, records the located diagnostic
/// into `sink` and returns nullptr instead of throwing.
std::unique_ptr<SDFG> load_sdfg(const std::string& text,
                                diag::DiagSink& sink);

}  // namespace dace::ir
