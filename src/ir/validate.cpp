// SDFG structural validation.
//
// Throws dace::Error on malformed graphs. Called by the frontend after
// lowering, by every transformation test, and by the executor before
// running, so that graph surgery bugs surface early.
//
// Only *structure* is checked here; semantic properties (race freedom of
// map scopes, memlet bounds, def-use over the state machine) are
// delegated to the analyses in analysis/analysis.hpp, which return
// three-valued verdicts instead of throwing.
#include "ir/sdfg.hpp"

namespace dace::ir {

namespace {

void validate_state(const SDFG& sdfg, const State& st) {
  auto ctx = [&](auto&&... parts) {
    return err("validate: SDFG '", sdfg.name(), "', state '", st.label(),
               "': ", parts...);
  };

  for (const auto& e : st.edges()) {
    if (!st.alive(e.src)) throw ctx("edge from dead node ", e.src);
    if (!st.alive(e.dst)) throw ctx("edge to dead node ", e.dst);
    if (!e.memlet.empty()) {
      if (!sdfg.has_array(e.memlet.data))
        throw ctx("memlet references unknown container '", e.memlet.data, "'");
      const DataDesc& d = sdfg.array(e.memlet.data);
      if (!d.is_stream && e.memlet.subset.dims() != d.rank())
        throw ctx("memlet ", e.memlet.to_string(), " has rank ",
                  e.memlet.subset.dims(), " but container has rank ",
                  d.rank());
      // WCR resolves *write* conflicts; a memlet flowing out of a map
      // entry is a read and must not carry one.
      if (e.memlet.wcr != WCR::None &&
          st.node(e.src)->kind == NodeKind::MapEntry)
        throw ctx("read memlet ", e.memlet.to_string(),
                  " out of a map entry carries WCR");
    }
  }

  for (int id : st.node_ids()) {
    const Node* n = st.node(id);
    switch (n->kind) {
      case NodeKind::Access: {
        const auto* a = static_cast<const AccessNode*>(n);
        if (!sdfg.has_array(a->data))
          throw ctx("access node for unknown container '", a->data, "'");
        break;
      }
      case NodeKind::Tasklet: {
        const auto* t = static_cast<const Tasklet*>(n);
        std::set<std::string> have;
        for (const auto* e : st.in_edges(id)) have.insert(e->dst_conn);
        for (const auto& in : t->code.free_inputs()) {
          if (!have.count(in))
            throw ctx("tasklet '", t->name, "' reads connector '", in,
                      "' with no incoming edge");
        }
        if (st.out_degree(id) < 1)
          throw ctx("tasklet '", t->name, "' has no output edge");
        break;
      }
      case NodeKind::MapEntry: {
        const auto* m = static_cast<const MapEntry*>(n);
        if (!st.alive(m->exit_node) ||
            st.node(m->exit_node)->kind != NodeKind::MapExit)
          throw ctx("map '", m->name, "' has no paired exit");
        if (m->params.size() != m->range.dims())
          throw ctx("map '", m->name, "' parameter/range rank mismatch");
        // Every OUT_x on the inside must have a matching IN_x outside
        // (dynamic-range maps excepted -- not used).
        std::set<std::string> in_conns, out_conns;
        for (const auto* e : st.in_edges(id)) in_conns.insert(e->dst_conn);
        for (const auto* e : st.out_edges(id)) out_conns.insert(e->src_conn);
        for (const auto& oc : out_conns) {
          if (oc.rfind("OUT_", 0) == 0 && !in_conns.count("IN_" + oc.substr(4)))
            throw ctx("map '", m->name, "' connector ", oc,
                      " has no matching input");
        }
        break;
      }
      case NodeKind::MapExit: {
        const auto* m = static_cast<const MapExit*>(n);
        if (!st.alive(m->entry_node) ||
            st.node(m->entry_node)->kind != NodeKind::MapEntry)
          throw ctx("map exit without paired entry");
        // Symmetric to the MapEntry check: every IN_x arriving from the
        // inside must leave through a matching OUT_x.
        const auto* me = static_cast<const MapEntry*>(st.node(m->entry_node));
        std::set<std::string> in_conns, out_conns;
        for (const auto* e : st.in_edges(id)) in_conns.insert(e->dst_conn);
        for (const auto* e : st.out_edges(id)) out_conns.insert(e->src_conn);
        for (const auto& ic : in_conns) {
          if (ic.rfind("IN_", 0) == 0 && !out_conns.count("OUT_" + ic.substr(3)))
            throw ctx("map '", me->name, "' exit connector ", ic,
                      " has no matching output");
        }
        break;
      }
      case NodeKind::Library:
        break;
      case NodeKind::NestedSDFG: {
        const auto* nn = static_cast<const NestedSDFGNode*>(n);
        if (!nn->sdfg) throw ctx("nested SDFG node without callee");
        for (const auto* e : st.in_edges(id)) {
          if (!nn->in_connectors.count(e->dst_conn))
            throw ctx("nested SDFG edge into unknown connector '", e->dst_conn,
                      "'");
        }
        for (const auto* e : st.out_edges(id)) {
          if (!nn->out_connectors.count(e->src_conn))
            throw ctx("nested SDFG edge out of unknown connector '",
                      e->src_conn, "'");
        }
        break;
      }
    }
  }

  // The dataflow graph must be acyclic.
  (void)st.topological_order();
}

}  // namespace

void SDFG::validate() const {
  DACE_CHECK(state_alive(start_state_), "validate: SDFG '", name_,
             "' has no live start state");
  for (const auto& e : istate_edges_) {
    DACE_CHECK(state_alive(e.src) && state_alive(e.dst),
               "validate: interstate edge references dead state");
  }
  for (const auto& an : arg_names_) {
    DACE_CHECK(arrays_.count(an), "validate: argument '", an,
               "' has no container");
    DACE_CHECK(!arrays_.at(an).transient, "validate: argument '", an,
               "' is transient");
  }
  for (int sid : state_ids()) {
    validate_state(*this, state(sid));
    // Recurse into nested SDFGs.
    for (int nid : state(sid).node_ids()) {
      if (const auto* nn = state(sid).node_as<NestedSDFGNode>(nid)) {
        nn->sdfg->validate();
      }
    }
  }
}

}  // namespace dace::ir
