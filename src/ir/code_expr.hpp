// Tasklet code expressions.
//
// Tasklets are stateless computations (Section 2.3); their code is a small
// scalar expression over named input connectors and SDFG symbols.  The same
// AST doubles as the condition language on interstate edges.  CodeExpr is
// immutable with value semantics, like sym::Expr.
#pragma once

#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/common.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::ir {

enum class CodeOp {
  Const,   // double literal
  Input,   // value read from an input connector
  Sym,     // SDFG symbol (integer, converted to double)
  Add, Sub, Mul, Div, Pow, Mod,
  Min, Max,
  Neg, Abs, Exp, Log, Sqrt, Sin, Cos, Tanh, Floor,
  Lt, Le, Gt, Ge, Eq, Ne,   // comparisons: 1.0 / 0.0
  And, Or, Not,
  Select,  // args: cond, iftrue, iffalse
};

class CodeExpr;

namespace detail {
struct CodeNode {
  CodeOp op = CodeOp::Const;
  double value = 0.0;
  std::string name;  // Input / Sym
  std::vector<CodeExpr> args;
};
}  // namespace detail

class CodeExpr {
 public:
  /// Default-constructed expressions are invalid (used for "no condition"
  /// on interstate edges); use constant() for a literal zero.
  CodeExpr() = default;
  explicit CodeExpr(double v);

  static CodeExpr constant(double v) { return CodeExpr(v); }
  static CodeExpr input(const std::string& name);
  static CodeExpr symbol(const std::string& name);
  static CodeExpr unary(CodeOp op, CodeExpr a);
  static CodeExpr binary(CodeOp op, CodeExpr a, CodeExpr b);
  static CodeExpr select(CodeExpr cond, CodeExpr t, CodeExpr f);

  CodeOp op() const { return node_->op; }
  double value() const { return node_->value; }
  const std::string& name() const { return node_->name; }
  const std::vector<CodeExpr>& args() const { return node_->args; }

  bool valid() const { return node_ != nullptr; }

  /// All input-connector names referenced.
  void free_inputs(std::set<std::string>& out) const;
  std::set<std::string> free_inputs() const;
  /// All symbol names referenced.
  void free_symbols(std::set<std::string>& out) const;

  /// Replace Input(name) references by other expressions (for tasklet
  /// chaining during fusion).
  CodeExpr subs_inputs(const std::map<std::string, CodeExpr>& m) const;
  /// Rename inputs (connector renaming).
  CodeExpr rename_inputs(const std::map<std::string, std::string>& m) const;
  /// Replace Sym(name) references by symbolic expressions converted to
  /// code form (used when inlining nested SDFGs).
  CodeExpr subs_symbols(const std::map<std::string, CodeExpr>& m) const;

  /// Interpret with the given input values and symbol bindings. Slow path;
  /// hot loops use the bytecode compiler in runtime/bytecode.hpp.
  double eval(const std::map<std::string, double>& inputs,
              const sym::SymbolMap& syms) const;

  /// Count of operation nodes (used by cost models).
  int op_count() const;

  std::string to_string() const;

 private:
  explicit CodeExpr(std::shared_ptr<const detail::CodeNode> n)
      : node_(std::move(n)) {}
  std::shared_ptr<const detail::CodeNode> node_;
};

/// Convert a symbolic integer expression to a CodeExpr over symbols.
CodeExpr to_code(const sym::Expr& e);

/// Inverse direction, when representable: integer ops over symbols and
/// constants (Div becomes floor division, matching to_code's image).
/// Used to recover loop bounds and interstate conditions symbolically.
std::optional<sym::Expr> code_to_sym(const CodeExpr& e);

// Operator sugar for building tasklet code.
inline CodeExpr operator+(const CodeExpr& a, const CodeExpr& b) {
  return CodeExpr::binary(CodeOp::Add, a, b);
}
inline CodeExpr operator-(const CodeExpr& a, const CodeExpr& b) {
  return CodeExpr::binary(CodeOp::Sub, a, b);
}
inline CodeExpr operator*(const CodeExpr& a, const CodeExpr& b) {
  return CodeExpr::binary(CodeOp::Mul, a, b);
}
inline CodeExpr operator/(const CodeExpr& a, const CodeExpr& b) {
  return CodeExpr::binary(CodeOp::Div, a, b);
}
inline CodeExpr operator-(const CodeExpr& a) {
  return CodeExpr::unary(CodeOp::Neg, a);
}

}  // namespace dace::ir
