// AST -> SDFG translation (Section 2.3, Table 1 of the paper).
//
// Produces the direct, control-centric translation ("-O0"): one state per
// statement/operation, element-wise array operations as map scopes with
// tasklets, `@` and reductions as library nodes, control flow on
// interstate edges, and WCR memlets where augmented assignments race.
// The dataflow-coarsening pass (transforms/simplify.hpp) then exposes the
// data-centric view.
//
// Lowering errors are structured diagnostics (common/diag.hpp): the
// throwing entry points raise dace::Error subclass diag::DiagError with
// code + line:col; the sink-based overloads record into a DiagSink and
// return nullptr instead, so a driver can report every failing function
// in one run.
#pragma once

#include <memory>

#include "common/diag.hpp"
#include "frontend/ast.hpp"
#include "ir/sdfg.hpp"

namespace dace::fe {

/// Lower one parsed function to an SDFG.  Throws diag::DiagError.
std::unique_ptr<ir::SDFG> lower_to_sdfg(const Function& f);

/// Recovering variant: on error, records into `sink` and returns nullptr.
std::unique_ptr<ir::SDFG> lower_to_sdfg(const Function& f,
                                        diag::DiagSink& sink);

/// Convenience: parse `source` and lower the function named `name`
/// (or the last function if empty).  Throws dace::Error carrying the full
/// caret-rendered report of every diagnostic found.
std::unique_ptr<ir::SDFG> compile_to_sdfg(const std::string& source,
                                          const std::string& name = "");

/// Recovering variant: parses with recovery and lowers every function,
/// collecting all diagnostics into `sink`; returns nullptr if the
/// requested function could not be produced.
std::unique_ptr<ir::SDFG> compile_to_sdfg(const std::string& source,
                                          diag::DiagSink& sink,
                                          const std::string& name = "");

}  // namespace dace::fe
