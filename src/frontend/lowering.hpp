// AST -> SDFG translation (Section 2.3, Table 1 of the paper).
//
// Produces the direct, control-centric translation ("-O0"): one state per
// statement/operation, element-wise array operations as map scopes with
// tasklets, `@` and reductions as library nodes, control flow on
// interstate edges, and WCR memlets where augmented assignments race.
// The dataflow-coarsening pass (transforms/simplify.hpp) then exposes the
// data-centric view.
#pragma once

#include <memory>

#include "frontend/ast.hpp"
#include "ir/sdfg.hpp"

namespace dace::fe {

/// Lower one parsed function to an SDFG.
std::unique_ptr<ir::SDFG> lower_to_sdfg(const Function& f);

/// Convenience: parse `source` and lower the function named `name`
/// (or the first function if empty).
std::unique_ptr<ir::SDFG> compile_to_sdfg(const std::string& source,
                                          const std::string& name = "");

}  // namespace dace::fe
