#include "frontend/parser.hpp"

#include <functional>

#include "frontend/lexer.hpp"

namespace dace::fe {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Module parse_module() {
    Module m;
    skip_newlines();
    while (!at(Tok::EndOfFile)) {
      m.functions.push_back(parse_decorated_function());
      skip_newlines();
    }
    return m;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    return e;
  }

 private:
  // -- token stream helpers --------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(int k = 1) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_op(const std::string& text) const {
    return cur().kind == Tok::Op && cur().text == text;
  }
  bool at_name(const std::string& text) const {
    return cur().kind == Tok::Name && cur().text == text;
  }
  Token advance() { return toks_[pos_++]; }
  Token expect(Tok k, const std::string& what) {
    DACE_CHECK(at(k), "parse: expected ", what, " at line ", cur().line,
               ", got '", cur().text, "'");
    return advance();
  }
  void expect_op(const std::string& text) {
    DACE_CHECK(at_op(text), "parse: expected '", text, "' at line ",
               cur().line, ", got '", cur().text, "'");
    advance();
  }
  void expect_name(const std::string& text) {
    DACE_CHECK(at_name(text), "parse: expected '", text, "' at line ",
               cur().line, ", got '", cur().text, "'");
    advance();
  }
  void skip_newlines() {
    while (at(Tok::Newline)) advance();
  }

  // -- functions ---------------------------------------------------------------
  Function parse_decorated_function() {
    bool auto_opt = false;
    std::optional<ir::DeviceType> device;
    // Optional decorator: @dace.program or @dace.program(kwargs)
    if (at_op("@")) {
      advance();
      std::string dec = parse_dotted_name();
      DACE_CHECK(dec == "dace.program",
                 "parse: unsupported decorator '@", dec, "' at line ",
                 cur().line);
      if (at_op("(")) {
        advance();
        while (!at_op(")")) {
          std::string key = expect(Tok::Name, "keyword").text;
          expect_op("=");
          if (key == "auto_optimize") {
            std::string v = expect(Tok::Name, "True/False").text;
            auto_opt = (v == "True");
          } else if (key == "device") {
            std::string v = parse_dotted_name();
            if (v == "DeviceType.CPU" || v == "dace.DeviceType.CPU") {
              device = ir::DeviceType::CPU;
            } else if (v == "DeviceType.GPU" || v == "dace.DeviceType.GPU") {
              device = ir::DeviceType::GPU;
            } else if (v == "DeviceType.FPGA" || v == "dace.DeviceType.FPGA") {
              device = ir::DeviceType::FPGA;
            } else {
              throw err("parse: unknown device '", v, "' at line ", cur().line);
            }
          } else {
            throw err("parse: unknown decorator keyword '", key, "'");
          }
          if (at_op(",")) advance();
        }
        expect_op(")");
      }
      expect(Tok::Newline, "newline after decorator");
      skip_newlines();
    }
    expect_name("def");
    Function f;
    f.auto_optimize = auto_opt;
    f.device = device;
    f.name = expect(Tok::Name, "function name").text;
    expect_op("(");
    while (!at_op(")")) {
      Param p;
      p.name = expect(Tok::Name, "parameter name").text;
      expect_op(":");
      parse_type_annotation(p);
      f.params.push_back(std::move(p));
      if (at_op(",")) advance();
    }
    expect_op(")");
    expect_op(":");
    expect(Tok::Newline, "newline after def");
    f.body = parse_block();
    return f;
  }

  void parse_type_annotation(Param& p) {
    std::string t = parse_dotted_name();
    if (t == "dace.float64") {
      p.dtype = ir::DType::f64;
    } else if (t == "dace.float32") {
      p.dtype = ir::DType::f32;
    } else if (t == "dace.int64") {
      p.dtype = ir::DType::i64;
    } else if (t == "dace.int32") {
      p.dtype = ir::DType::i32;
    } else {
      throw err("parse: unknown type annotation '", t, "' at line ",
                cur().line);
    }
    if (at_op("[")) {
      advance();
      while (!at_op("]")) {
        ExprPtr dim = parse_expr();
        p.shape.push_back(expr_to_symbolic(dim));
        if (at_op(",")) advance();
      }
      expect_op("]");
    }
  }

  /// Convert a shape-annotation expression to a symbolic expression.
  sym::Expr expr_to_symbolic(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        DACE_CHECK(e->num_is_int, "parse: non-integer shape at line ", e->line);
        return sym::Expr(e->inum);
      case ExKind::Name:
        return sym::Expr::symbol(e->name);
      case ExKind::BinOp: {
        sym::Expr a = expr_to_symbolic(e->args[0]);
        sym::Expr b = expr_to_symbolic(e->args[1]);
        if (e->name == "+") return a + b;
        if (e->name == "-") return a - b;
        if (e->name == "*") return a * b;
        if (e->name == "//") return sym::floordiv(a, b);
        if (e->name == "%") return sym::mod(a, b);
        throw err("parse: unsupported shape operator '", e->name, "'");
      }
      case ExKind::UnOp:
        if (e->name == "-") return -expr_to_symbolic(e->args[0]);
        throw err("parse: unsupported shape operator");
      default:
        throw err("parse: unsupported shape expression at line ", e->line);
    }
  }

  // -- statements ---------------------------------------------------------------
  std::vector<StmtPtr> parse_block() {
    expect(Tok::Indent, "indented block");
    std::vector<StmtPtr> body;
    skip_newlines();
    while (!at(Tok::Dedent) && !at(Tok::EndOfFile)) {
      body.push_back(parse_statement());
      skip_newlines();
    }
    expect(Tok::Dedent, "dedent");
    DACE_CHECK(!body.empty(), "parse: empty block");
    return body;
  }

  StmtPtr parse_statement() {
    auto st = std::make_shared<StmtNode>();
    st->line = cur().line;
    if (at_name("for")) return parse_for();
    if (at_name("if")) return parse_if();
    if (at_name("while")) return parse_while();
    if (at_name("pass")) {
      advance();
      expect(Tok::Newline, "newline");
      st->kind = StKind::Pass;
      return st;
    }
    DACE_CHECK(!at_name("return"),
               "parse: 'return' is not supported; write results into output "
               "arguments (line ", cur().line, ")");
    // Expression / assignment statement.
    ExprPtr target = parse_expr();
    if (at_op("=")) {
      advance();
      st->kind = StKind::Assign;
      st->target = target;
      st->value = parse_expr();
    } else if (at_op("+=") || at_op("-=") || at_op("*=") || at_op("/=")) {
      std::string op = advance().text;
      st->kind = StKind::AugAssign;
      st->aug_op = op.substr(0, 1);
      st->target = target;
      st->value = parse_expr();
    } else {
      st->kind = StKind::ExprStmt;
      st->value = target;
    }
    expect(Tok::Newline, "newline after statement");
    return st;
  }

  StmtPtr parse_for() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::For;
    st->line = cur().line;
    expect_name("for");
    st->loop_vars.push_back(expect(Tok::Name, "loop variable").text);
    while (at_op(",")) {
      advance();
      st->loop_vars.push_back(expect(Tok::Name, "loop variable").text);
    }
    expect_name("in");
    st->iter = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after for");
    st->body = parse_block();
    return st;
  }

  StmtPtr parse_if() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::If;
    st->line = cur().line;
    advance();  // if / elif
    st->cond = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after if");
    st->body = parse_block();
    skip_newlines();
    if (at_name("elif")) {
      st->orelse.push_back(parse_if());
    } else if (at_name("else")) {
      advance();
      expect_op(":");
      expect(Tok::Newline, "newline after else");
      st->orelse = parse_block();
    }
    return st;
  }

  StmtPtr parse_while() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::While;
    st->line = cur().line;
    expect_name("while");
    st->cond = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after while");
    st->body = parse_block();
    return st;
  }

  // -- expressions ----------------------------------------------------------
  // Precedence climbing: or < and < not < cmp < +- < */@%// < unary < ** <
  // postfix.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (at_name("or")) {
      int line = advance().line;
      e = make_binop("or", e, parse_and(), line);
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_not();
    while (at_name("and")) {
      int line = advance().line;
      e = make_binop("and", e, parse_not(), line);
    }
    return e;
  }

  ExprPtr parse_not() {
    if (at_name("not")) {
      int line = advance().line;
      return make_unop("not", parse_not(), line);
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr e = parse_additive();
    while (at_op("<") || at_op("<=") || at_op(">") || at_op(">=") ||
           at_op("==") || at_op("!=")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_additive(), t.line);
    }
    return e;
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (at_op("+") || at_op("-")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_multiplicative(), t.line);
    }
    return e;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (at_op("*") || at_op("/") || at_op("@") || at_op("%") ||
           at_op("//")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_unary(), t.line);
    }
    return e;
  }

  ExprPtr parse_unary() {
    if (at_op("-")) {
      int line = advance().line;
      return make_unop("-", parse_unary(), line);
    }
    if (at_op("+")) {
      advance();
      return parse_unary();
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr e = parse_postfix();
    if (at_op("**")) {
      int line = advance().line;
      return make_binop("**", e, parse_unary(), line);  // right-assoc
    }
    return e;
  }

  std::string parse_dotted_name() {
    std::string name = expect(Tok::Name, "name").text;
    while (at_op(".") && peek().kind == Tok::Name) {
      advance();
      name += "." + advance().text;
    }
    return name;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_atom();
    for (;;) {
      if (at_op("(")) {
        int line = advance().line;
        auto call = std::make_shared<ExprNode>();
        call->kind = ExKind::Call;
        call->line = line;
        call->base = e;
        while (!at_op(")")) {
          if (cur().kind == Tok::Name && peek().kind == Tok::Op &&
              peek().text == "=" ) {
            std::string key = advance().text;
            advance();  // '='
            call->kwargs.emplace_back(key, parse_expr());
          } else {
            call->args.push_back(parse_expr());
          }
          if (at_op(",")) advance();
        }
        expect_op(")");
        e = call;
      } else if (at_op("[")) {
        int line = advance().line;
        auto sub = std::make_shared<ExprNode>();
        sub->kind = ExKind::Subscript;
        sub->line = line;
        sub->base = e;
        while (!at_op("]")) {
          sub->slices.push_back(parse_slice_item());
          if (at_op(",")) advance();
        }
        expect_op("]");
        e = sub;
      } else if (at_op(".") && peek().kind == Tok::Name) {
        // Attribute access: fold into dotted Name when base is a Name
        // (module paths like np.sqrt); method-style attributes (A.dtype)
        // also become dotted names resolved by the consumer.
        advance();
        std::string attr = advance().text;
        DACE_CHECK(e->kind == ExKind::Name,
                   "parse: attribute on non-name at line ", cur().line);
        e = make_name(e->name + "." + attr, e->line);
      } else {
        return e;
      }
    }
  }

  SliceItem parse_slice_item() {
    SliceItem item;
    // Forms: expr | [expr] : [expr] [: [expr]]
    if (!at_op(":")) {
      ExprPtr first = parse_expr();
      if (!at_op(":")) {
        item.is_index = true;
        item.index = first;
        return item;
      }
      item.begin = first;
    }
    expect_op(":");
    if (!at_op(":") && !at_op("]") && !at_op(",")) item.end = parse_expr();
    if (at_op(":")) {
      advance();
      if (!at_op("]") && !at_op(",")) item.step = parse_expr();
    }
    return item;
  }

  ExprPtr parse_atom() {
    if (at(Tok::Number)) {
      Token t = advance();
      return t.num_is_int ? make_int(t.inum, t.line) : make_num(t.num, t.line);
    }
    if (at(Tok::Name)) {
      if (at_name("True") || at_name("False")) {
        Token t = advance();
        return make_int(t.text == "True" ? 1 : 0, t.line);
      }
      int line = cur().line;
      std::string name = parse_dotted_name();
      return make_name(name, line);
    }
    if (at_op("(")) {
      int line = advance().line;
      ExprPtr first = parse_expr();
      if (at_op(",")) {
        auto tup = std::make_shared<ExprNode>();
        tup->kind = ExKind::Tuple;
        tup->line = line;
        tup->args.push_back(first);
        while (at_op(",")) {
          advance();
          if (at_op(")")) break;
          tup->args.push_back(parse_expr());
        }
        expect_op(")");
        return tup;
      }
      expect_op(")");
      return first;
    }
    throw err("parse: unexpected token '", cur().text, "' at line ",
              cur().line);
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Module parse(const std::string& source) {
  Parser p(tokenize(source));
  return p.parse_module();
}

ExprPtr parse_expression(const std::string& source) {
  Parser p(tokenize(source));
  return p.parse_single_expression();
}

}  // namespace dace::fe
