#include "frontend/parser.hpp"

#include <functional>

#include "frontend/lexer.hpp"

namespace dace::fe {

namespace {

/// Thrown internally to unwind to the nearest recovery point (statement or
/// top-level function).  The diagnostic has already been recorded in the
/// sink by the time this propagates.
struct ParseAbort {};

constexpr size_t kMaxErrors = 64;

class Parser {
 public:
  Parser(std::vector<Token> toks, diag::DiagSink& sink)
      : toks_(std::move(toks)), sink_(sink) {}

  Module parse_module() {
    Module m;
    skip_newlines();
    while (!at(Tok::EndOfFile)) {
      if (sink_.error_count() >= kMaxErrors) {
        sink_.error("E200", cur().line, cur().col,
                    "too many errors; giving up");
        break;
      }
      size_t start = pos_;
      try {
        m.functions.push_back(parse_decorated_function());
      } catch (const ParseAbort&) {
        // Panic-mode recovery: resynchronize at the next top-level
        // function (a 'def' or decorator at indentation depth 0).
        if (pos_ == start) advance();
        sync_toplevel();
      }
      skip_newlines();
    }
    return m;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    return e;
  }

 private:
  // -- token stream helpers --------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(int k = 1) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_op(const std::string& text) const {
    return cur().kind == Tok::Op && cur().text == text;
  }
  bool at_name(const std::string& text) const {
    return cur().kind == Tok::Name && cur().text == text;
  }
  Token advance() {
    Token t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }

  /// Describe the current token for an error message.
  std::string describe_cur() const {
    switch (cur().kind) {
      case Tok::Newline: return "end of line";
      case Tok::Indent: return "indented block";
      case Tok::Dedent: return "end of block";
      case Tok::EndOfFile: return "end of input";
      default: return "'" + cur().text + "'";
    }
  }
  int cur_span() const {
    return std::max<int>(1, static_cast<int>(cur().text.size()));
  }

  /// Record a diagnostic at the current token and unwind to recovery.
  [[noreturn]] void abort_here(const std::string& code,
                               const std::string& msg) {
    sink_.error(code, cur().line, cur().col, msg, cur_span());
    throw ParseAbort{};
  }

  Token expect(Tok k, const std::string& what) {
    if (!at(k))
      abort_here("E201", "expected " + what + ", got " + describe_cur());
    return advance();
  }
  void expect_op(const std::string& text) {
    if (!at_op(text))
      abort_here("E201", "expected '" + text + "', got " + describe_cur());
    advance();
  }
  void expect_name(const std::string& text) {
    if (!at_name(text))
      abort_here("E201", "expected '" + text + "', got " + describe_cur());
    advance();
  }
  void skip_newlines() {
    while (at(Tok::Newline)) advance();
  }

  /// Skip to the start of the next statement: consume through the Newline
  /// that ends the damaged logical line, ignoring any nested blocks opened
  /// meanwhile.  Stops (without consuming) at a Dedent closing the current
  /// block, so block parsing can terminate normally.
  void sync_statement() {
    int depth = 0;
    for (;;) {
      if (at(Tok::EndOfFile)) return;
      if (at(Tok::Indent)) {
        ++depth;
        advance();
        continue;
      }
      if (at(Tok::Dedent)) {
        if (depth == 0) return;  // leave for the enclosing block to consume
        --depth;
        advance();
        continue;
      }
      if (at(Tok::Newline) && depth == 0) {
        advance();
        return;
      }
      advance();
    }
  }

  /// Skip to the next top-level 'def' or '@' decorator (depth 0).
  void sync_toplevel() {
    int depth = 0;
    for (;;) {
      if (at(Tok::EndOfFile)) return;
      if (at(Tok::Indent)) { ++depth; advance(); continue; }
      if (at(Tok::Dedent)) { if (depth > 0) --depth; advance(); continue; }
      if (depth == 0 && (at_name("def") || at_op("@"))) return;
      advance();
    }
  }

  // -- functions ---------------------------------------------------------------
  Function parse_decorated_function() {
    bool auto_opt = false;
    std::optional<ir::DeviceType> device;
    // Optional decorator: @dace.program or @dace.program(kwargs)
    if (at_op("@")) {
      advance();
      Token dec_tok = cur();
      std::string dec = parse_dotted_name();
      if (dec != "dace.program") {
        sink_.error("E203", dec_tok.line, dec_tok.col,
                    "unsupported decorator '@" + dec +
                        "'; only @dace.program is recognized",
                    static_cast<int>(dec.size()));
        throw ParseAbort{};
      }
      if (at_op("(")) {
        advance();
        while (!at_op(")")) {
          Token key_tok = cur();
          std::string key = expect(Tok::Name, "decorator keyword").text;
          expect_op("=");
          if (key == "auto_optimize") {
            std::string v = expect(Tok::Name, "True/False").text;
            auto_opt = (v == "True");
          } else if (key == "device") {
            Token dev_tok = cur();
            std::string v = parse_dotted_name();
            if (v == "DeviceType.CPU" || v == "dace.DeviceType.CPU") {
              device = ir::DeviceType::CPU;
            } else if (v == "DeviceType.GPU" || v == "dace.DeviceType.GPU") {
              device = ir::DeviceType::GPU;
            } else if (v == "DeviceType.FPGA" || v == "dace.DeviceType.FPGA") {
              device = ir::DeviceType::FPGA;
            } else {
              sink_.error("E205", dev_tok.line, dev_tok.col,
                          "unknown device '" + v + "'",
                          static_cast<int>(v.size()))
                  .notes.push_back(
                      "expected DeviceType.CPU, DeviceType.GPU or "
                      "DeviceType.FPGA");
              throw ParseAbort{};
            }
          } else {
            sink_.error("E204", key_tok.line, key_tok.col,
                        "unknown decorator keyword '" + key + "'",
                        static_cast<int>(key.size()))
                .notes.push_back("supported: auto_optimize, device");
            throw ParseAbort{};
          }
          if (at_op(",")) advance();
        }
        expect_op(")");
      }
      expect(Tok::Newline, "newline after decorator");
      skip_newlines();
    }
    expect_name("def");
    Function f;
    f.auto_optimize = auto_opt;
    f.device = device;
    f.name = expect(Tok::Name, "function name").text;
    expect_op("(");
    while (!at_op(")")) {
      if (at(Tok::Newline) || at(Tok::EndOfFile))
        abort_here("E201", "expected ')' to close parameter list, got " +
                               describe_cur());
      Param p;
      p.name = expect(Tok::Name, "parameter name").text;
      expect_op(":");
      parse_type_annotation(p);
      f.params.push_back(std::move(p));
      if (at_op(",")) advance();
    }
    expect_op(")");
    expect_op(":");
    expect(Tok::Newline, "newline after def");
    f.body = parse_block();
    return f;
  }

  void parse_type_annotation(Param& p) {
    Token t0 = cur();
    std::string t = parse_dotted_name();
    if (t == "dace.float64") {
      p.dtype = ir::DType::f64;
    } else if (t == "dace.float32") {
      p.dtype = ir::DType::f32;
    } else if (t == "dace.int64") {
      p.dtype = ir::DType::i64;
    } else if (t == "dace.int32") {
      p.dtype = ir::DType::i32;
    } else {
      // Recoverable: report, assume float64, and keep parsing the
      // remaining parameters so one run surfaces every bad annotation.
      sink_.error("E206", t0.line, t0.col,
                  "unknown type annotation '" + t + "'",
                  static_cast<int>(t.size()))
          .notes.push_back(
              "supported: dace.float64, dace.float32, dace.int64, "
              "dace.int32 (optionally with a [shape])");
      p.dtype = ir::DType::f64;
    }
    if (at_op("[")) {
      advance();
      while (!at_op("]")) {
        if (at(Tok::Newline) || at(Tok::EndOfFile))
          abort_here("E210", "unterminated shape annotation; expected ']'");
        ExprPtr dim = parse_expr();
        p.shape.push_back(expr_to_symbolic(dim));
        if (at_op(",")) advance();
      }
      expect_op("]");
    }
  }

  /// Convert a shape-annotation expression to a symbolic expression.
  sym::Expr expr_to_symbolic(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        if (!e->num_is_int) {
          sink_.error("E209", e->line, e->col, "non-integer shape dimension");
          throw ParseAbort{};
        }
        return sym::Expr(e->inum);
      case ExKind::Name:
        return sym::Expr::symbol(e->name);
      case ExKind::BinOp: {
        sym::Expr a = expr_to_symbolic(e->args[0]);
        sym::Expr b = expr_to_symbolic(e->args[1]);
        if (e->name == "+") return a + b;
        if (e->name == "-") return a - b;
        if (e->name == "*") return a * b;
        if (e->name == "//") return sym::floordiv(a, b);
        if (e->name == "%") return sym::mod(a, b);
        sink_.error("E209", e->line, e->col,
                    "unsupported shape operator '" + e->name + "'");
        throw ParseAbort{};
      }
      case ExKind::UnOp:
        if (e->name == "-") return -expr_to_symbolic(e->args[0]);
        sink_.error("E209", e->line, e->col, "unsupported shape operator");
        throw ParseAbort{};
      default:
        sink_.error("E209", e->line, e->col,
                    "unsupported shape expression");
        throw ParseAbort{};
    }
  }

  // -- statements ---------------------------------------------------------------
  std::vector<StmtPtr> parse_block() {
    expect(Tok::Indent, "indented block");
    std::vector<StmtPtr> body;
    skip_newlines();
    while (!at(Tok::Dedent) && !at(Tok::EndOfFile)) {
      if (sink_.error_count() >= kMaxErrors) throw ParseAbort{};
      size_t start = pos_;
      try {
        body.push_back(parse_statement());
      } catch (const ParseAbort&) {
        // Statement-level recovery: drop the damaged statement, sync to
        // the next line in this block, keep going.
        if (pos_ == start) advance();
        sync_statement();
      }
      skip_newlines();
    }
    if (at(Tok::Dedent)) advance();
    if (body.empty()) {
      sink_.error("E208", cur().line, cur().col,
                  "empty block: a body must contain at least one statement");
      throw ParseAbort{};
    }
    return body;
  }

  StmtPtr parse_statement() {
    auto st = std::make_shared<StmtNode>();
    st->line = cur().line;
    st->col = cur().col;
    if (at_name("for")) return parse_for();
    if (at_name("if")) return parse_if();
    if (at_name("while")) return parse_while();
    if (at_name("pass")) {
      advance();
      expect(Tok::Newline, "newline");
      st->kind = StKind::Pass;
      return st;
    }
    if (at_name("return")) {
      abort_here("E207",
                 "'return' is not supported; write results into output "
                 "arguments");
    }
    // Expression / assignment statement.
    ExprPtr target = parse_expr();
    if (at_op("=")) {
      advance();
      st->kind = StKind::Assign;
      st->target = target;
      st->value = parse_expr();
    } else if (at_op("+=") || at_op("-=") || at_op("*=") || at_op("/=")) {
      std::string op = advance().text;
      st->kind = StKind::AugAssign;
      st->aug_op = op.substr(0, 1);
      st->target = target;
      st->value = parse_expr();
    } else {
      st->kind = StKind::ExprStmt;
      st->value = target;
    }
    expect(Tok::Newline, "newline after statement");
    return st;
  }

  StmtPtr parse_for() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::For;
    st->line = cur().line;
    st->col = cur().col;
    expect_name("for");
    st->loop_vars.push_back(expect(Tok::Name, "loop variable").text);
    while (at_op(",")) {
      advance();
      st->loop_vars.push_back(expect(Tok::Name, "loop variable").text);
    }
    expect_name("in");
    st->iter = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after for");
    st->body = parse_block();
    return st;
  }

  StmtPtr parse_if() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::If;
    st->line = cur().line;
    st->col = cur().col;
    advance();  // if / elif
    st->cond = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after if");
    st->body = parse_block();
    skip_newlines();
    if (at_name("elif")) {
      st->orelse.push_back(parse_if());
    } else if (at_name("else")) {
      advance();
      expect_op(":");
      expect(Tok::Newline, "newline after else");
      st->orelse = parse_block();
    }
    return st;
  }

  StmtPtr parse_while() {
    auto st = std::make_shared<StmtNode>();
    st->kind = StKind::While;
    st->line = cur().line;
    st->col = cur().col;
    expect_name("while");
    st->cond = parse_expr();
    expect_op(":");
    expect(Tok::Newline, "newline after while");
    st->body = parse_block();
    return st;
  }

  // -- expressions ----------------------------------------------------------
  // Precedence climbing: or < and < not < cmp < +- < */@%// < unary < ** <
  // postfix.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (at_name("or")) {
      Token t = advance();
      e = make_binop("or", e, parse_and(), t.line, t.col);
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_not();
    while (at_name("and")) {
      Token t = advance();
      e = make_binop("and", e, parse_not(), t.line, t.col);
    }
    return e;
  }

  ExprPtr parse_not() {
    if (at_name("not")) {
      Token t = advance();
      return make_unop("not", parse_not(), t.line, t.col);
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr e = parse_additive();
    while (at_op("<") || at_op("<=") || at_op(">") || at_op(">=") ||
           at_op("==") || at_op("!=")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_additive(), t.line, t.col);
    }
    return e;
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (at_op("+") || at_op("-")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_multiplicative(), t.line, t.col);
    }
    return e;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (at_op("*") || at_op("/") || at_op("@") || at_op("%") ||
           at_op("//")) {
      Token t = advance();
      e = make_binop(t.text, e, parse_unary(), t.line, t.col);
    }
    return e;
  }

  ExprPtr parse_unary() {
    if (at_op("-")) {
      Token t = advance();
      return make_unop("-", parse_unary(), t.line, t.col);
    }
    if (at_op("+")) {
      advance();
      return parse_unary();
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr e = parse_postfix();
    if (at_op("**")) {
      Token t = advance();
      return make_binop("**", e, parse_unary(), t.line, t.col);  // right-assoc
    }
    return e;
  }

  std::string parse_dotted_name() {
    std::string name = expect(Tok::Name, "name").text;
    while (at_op(".") && peek().kind == Tok::Name) {
      advance();
      name += "." + advance().text;
    }
    return name;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_atom();
    for (;;) {
      if (at_op("(")) {
        Token t = advance();
        auto call = std::make_shared<ExprNode>();
        call->kind = ExKind::Call;
        call->line = t.line;
        call->col = t.col;
        while (!at_op(")")) {
          if (at(Tok::Newline) || at(Tok::EndOfFile))
            abort_here("E210", "unterminated call; expected ')'");
          if (cur().kind == Tok::Name && peek().kind == Tok::Op &&
              peek().text == "=" ) {
            std::string key = advance().text;
            advance();  // '='
            call->kwargs.emplace_back(key, parse_expr());
          } else {
            call->args.push_back(parse_expr());
          }
          if (at_op(",")) advance();
        }
        expect_op(")");
        call->base = e;
        e = call;
      } else if (at_op("[")) {
        Token t = advance();
        auto sub = std::make_shared<ExprNode>();
        sub->kind = ExKind::Subscript;
        sub->line = t.line;
        sub->col = t.col;
        sub->base = e;
        while (!at_op("]")) {
          if (at(Tok::Newline) || at(Tok::EndOfFile))
            abort_here("E210", "unterminated subscript; expected ']'");
          sub->slices.push_back(parse_slice_item());
          if (at_op(",")) advance();
        }
        expect_op("]");
        e = sub;
      } else if (at_op(".") && peek().kind == Tok::Name) {
        // Attribute access: fold into dotted Name when base is a Name
        // (module paths like np.sqrt); method-style attributes (A.dtype)
        // also become dotted names resolved by the consumer.
        advance();
        std::string attr = advance().text;
        if (e->kind != ExKind::Name)
          abort_here("E202", "attribute access on a non-name expression");
        e = make_name(e->name + "." + attr, e->line, e->col);
      } else {
        return e;
      }
    }
  }

  SliceItem parse_slice_item() {
    SliceItem item;
    // Forms: expr | [expr] : [expr] [: [expr]]
    if (!at_op(":")) {
      ExprPtr first = parse_expr();
      if (!at_op(":")) {
        item.is_index = true;
        item.index = first;
        return item;
      }
      item.begin = first;
    }
    expect_op(":");
    if (at(Tok::Newline) || at(Tok::EndOfFile))
      abort_here("E210", "unterminated slice; expected ']'");
    if (!at_op(":") && !at_op("]") && !at_op(",")) item.end = parse_expr();
    if (at_op(":")) {
      advance();
      if (at(Tok::Newline) || at(Tok::EndOfFile))
        abort_here("E210", "unterminated slice; expected ']'");
      if (!at_op("]") && !at_op(",")) item.step = parse_expr();
    }
    return item;
  }

  ExprPtr parse_atom() {
    if (at(Tok::Number)) {
      Token t = advance();
      return t.num_is_int ? make_int(t.inum, t.line, t.col)
                          : make_num(t.num, t.line, t.col);
    }
    if (at(Tok::Name)) {
      if (at_name("True") || at_name("False")) {
        Token t = advance();
        return make_int(t.text == "True" ? 1 : 0, t.line, t.col);
      }
      Token t = cur();
      std::string name = parse_dotted_name();
      return make_name(name, t.line, t.col);
    }
    if (at_op("(")) {
      Token t = advance();
      ExprPtr first = parse_expr();
      if (at_op(",")) {
        auto tup = std::make_shared<ExprNode>();
        tup->kind = ExKind::Tuple;
        tup->line = t.line;
        tup->col = t.col;
        tup->args.push_back(first);
        while (at_op(",")) {
          advance();
          if (at_op(")")) break;
          tup->args.push_back(parse_expr());
        }
        expect_op(")");
        return tup;
      }
      expect_op(")");
      return first;
    }
    abort_here("E202", "unexpected token " + describe_cur());
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  diag::DiagSink& sink_;
};

}  // namespace

Module parse(const std::string& source, diag::DiagSink& sink) {
  std::vector<Token> toks = tokenize(source, sink);
  Parser p(std::move(toks), sink);
  return p.parse_module();
}

Module parse(const std::string& source) {
  diag::DiagSink sink;
  sink.set_source("<input>", source);
  Module m = parse(source, sink);
  if (sink.has_errors()) throw diag_error(sink);
  return m;
}

ExprPtr parse_expression(const std::string& source) {
  diag::DiagSink sink;
  sink.set_source("<expr>", source);
  std::vector<Token> toks = tokenize(source, sink);
  Parser p(std::move(toks), sink);
  ExprPtr e;
  try {
    e = p.parse_single_expression();
  } catch (const ParseAbort&) {
    e = nullptr;
  }
  if (sink.has_errors() || !e) throw diag_error(sink);
  return e;
}

}  // namespace dace::fe
