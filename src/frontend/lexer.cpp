#include "frontend/lexer.hpp"

#include <cctype>

namespace dace::fe {

namespace {
bool is_ident_start(char c) { return std::isalpha((unsigned char)c) || c == '_'; }
bool is_ident(char c) { return std::isalnum((unsigned char)c) || c == '_'; }
}  // namespace

std::vector<Token> tokenize(const std::string& src, diag::DiagSink& sink) {
  std::vector<Token> out;
  std::vector<int> indents{0};
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // offset of the first char of the current line
  int bracket_depth = 0;
  bool at_line_start = true;

  auto cur_col = [&](size_t offset) {
    return static_cast<int>(offset - line_start) + 1;
  };
  auto push = [&](Tok k, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    t.col = cur_col(i);
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    if (at_line_start && bracket_depth == 0) {
      // Measure indentation; skip blank/comment-only lines entirely.
      size_t j = i;
      int col = 0;
      while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) {
        col += (src[j] == '\t') ? 8 : 1;
        ++j;
      }
      if (j >= src.size()) break;
      if (src[j] == '\n') {
        i = j + 1;
        ++line;
        line_start = i;
        continue;
      }
      if (src[j] == '#') {
        while (j < src.size() && src[j] != '\n') ++j;
        i = (j < src.size()) ? j + 1 : j;
        ++line;
        line_start = i;
        continue;
      }
      if (col > indents.back()) {
        indents.push_back(col);
        push(Tok::Indent);
      } else {
        while (col < indents.back()) {
          indents.pop_back();
          push(Tok::Dedent);
        }
        if (col != indents.back()) {
          sink.error("E102", line, cur_col(j),
                     "inconsistent indentation: " + std::to_string(col) +
                         " columns does not match any enclosing block")
              .notes.push_back(
                  "indentation must return to a previously used level "
                  "(tab counts as 8 columns)");
          // Recover by opening a block at this level so the rest of the
          // file still lexes with balanced Indent/Dedent.
          indents.push_back(col);
          push(Tok::Indent);
          out.back().col = cur_col(j);
        }
      }
      i = j;
      at_line_start = false;
      continue;
    }

    char c = src[i];
    if (c == '\n') {
      ++i;
      ++line;
      if (bracket_depth == 0) {
        push(Tok::Newline);
        out.back().line = line - 1;  // Newline belongs to the line it ends
        out.back().col = cur_col(i - 1);
        at_line_start = true;
      }
      line_start = i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
      i += 2;
      ++line;
      line_start = i;
      continue;
    }
    if (is_ident_start(c)) {
      size_t j = i;
      while (j < src.size() && is_ident(src[j])) ++j;
      push(Tok::Name, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit((unsigned char)c) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit((unsigned char)src[i + 1]))) {
      size_t j = i;
      bool is_float = false;
      while (j < src.size() &&
             (std::isdigit((unsigned char)src[j]) || src[j] == '.' ||
              src[j] == 'e' || src[j] == 'E' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        if (src[j] == '.' || src[j] == 'e' || src[j] == 'E') is_float = true;
        ++j;
      }
      std::string text = src.substr(i, j - i);
      Token t;
      t.kind = Tok::Number;
      t.line = line;
      t.col = cur_col(i);
      t.text = text;
      try {
        size_t used = 0;
        t.num = std::stod(text, &used);
        if (used != text.size()) throw std::invalid_argument(text);
        if (!is_float) {
          t.num_is_int = true;
          t.inum = std::stoll(text);
        }
        out.push_back(std::move(t));
      } catch (const std::exception&) {
        sink.error("E103", line, cur_col(i),
                   "malformed numeric literal '" + text + "'",
                   static_cast<int>(text.size()));
      }
      i = j;
      continue;
    }
    // Multi-character operators first.
    static const char* two_char[] = {"**", "//", "==", "!=", "<=", ">=",
                                     "+=", "-=", "*=", "/=", "->"};
    bool matched = false;
    for (const char* op : two_char) {
      if (src.compare(i, 2, op) == 0) {
        push(Tok::Op, op);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string single = "+-*/@%<>=()[]{},.:;";
    if (single.find(c) != std::string::npos) {
      if (c == '(' || c == '[' || c == '{') ++bracket_depth;
      if (c == ')' || c == ']' || c == '}') --bracket_depth;
      push(Tok::Op, std::string(1, c));
      ++i;
      continue;
    }
    sink.error("E101", line, cur_col(i),
               "unexpected character '" + std::string(1, c) + "'");
    ++i;  // skip the offending character and keep lexing
  }
  if (!out.empty() && out.back().kind != Tok::Newline) push(Tok::Newline);
  while (indents.size() > 1) {
    indents.pop_back();
    push(Tok::Dedent);
  }
  push(Tok::EndOfFile);
  return out;
}

std::vector<Token> tokenize(const std::string& src) {
  diag::DiagSink sink;
  sink.set_source("<input>", src);
  std::vector<Token> out = tokenize(src, sink);
  if (sink.has_errors()) throw Error(sink.render());
  return out;
}

}  // namespace dace::fe
