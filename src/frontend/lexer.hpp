// Indentation-aware tokenizer for DaCeLang.
#pragma once

#include <string>
#include <vector>

#include "common/common.hpp"
#include "common/diag.hpp"

namespace dace::fe {

enum class Tok {
  Name, Number, Newline, Indent, Dedent, EndOfFile,
  // punctuation / operators (lexeme carried in text)
  Op,
};

struct Token {
  Tok kind = Tok::EndOfFile;
  std::string text;   // identifier / operator lexeme
  double num = 0;     // Number value
  bool num_is_int = false;
  int64_t inum = 0;
  int line = 0;
  int col = 0;        // 1-based source column of the first character
};

/// Tokenize a DaCeLang source string.  Emits Newline at logical line ends
/// and Indent/Dedent at block boundaries; blank lines and '#' comments are
/// skipped; brackets suppress newlines (implicit line joining).
/// Throws dace::Error (with caret-rendered message) on the first bad input.
std::vector<Token> tokenize(const std::string& source);

/// Recovering variant: lexical errors (unexpected character, inconsistent
/// indentation, malformed numeric literal) are reported into `sink` and
/// skipped, so one pass surfaces every lexical problem.  The returned token
/// stream is always well-formed (balanced Indent/Dedent, trailing EOF).
std::vector<Token> tokenize(const std::string& source, diag::DiagSink& sink);

}  // namespace dace::fe
