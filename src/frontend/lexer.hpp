// Indentation-aware tokenizer for DaCeLang.
#pragma once

#include <string>
#include <vector>

#include "common/common.hpp"

namespace dace::fe {

enum class Tok {
  Name, Number, Newline, Indent, Dedent, EndOfFile,
  // punctuation / operators (lexeme carried in text)
  Op,
};

struct Token {
  Tok kind = Tok::EndOfFile;
  std::string text;   // identifier / operator lexeme
  double num = 0;     // Number value
  bool num_is_int = false;
  int64_t inum = 0;
  int line = 0;
};

/// Tokenize a DaCeLang source string.  Emits Newline at logical line ends
/// and Indent/Dedent at block boundaries; blank lines and '#' comments are
/// skipped; brackets suppress newlines (implicit line joining).
std::vector<Token> tokenize(const std::string& source);

}  // namespace dace::fe
