// Recursive-descent parser for DaCeLang.
//
// Accepts a module of `@dace.program`-decorated function definitions and
// produces the AST of ast.hpp.  Shape annotations are converted to
// symbolic expressions; undeclared names in shapes become SDFG symbols
// (the paper's `dace.symbol`).
#pragma once

#include "frontend/ast.hpp"

namespace dace::fe {

/// Parse a DaCeLang module. Throws dace::Error with line info on failure.
Module parse(const std::string& source);

/// Parse a single expression (for tests and interstate conditions).
ExprPtr parse_expression(const std::string& source);

}  // namespace dace::fe
