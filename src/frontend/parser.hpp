// Recursive-descent parser for DaCeLang.
//
// Accepts a module of `@dace.program`-decorated function definitions and
// produces the AST of ast.hpp.  Shape annotations are converted to
// symbolic expressions; undeclared names in shapes become SDFG symbols
// (the paper's `dace.symbol`).
//
// Two entry points: the throwing `parse(source)` renders every collected
// diagnostic (with source-line carets) into one dace::Error; the
// recovering `parse(source, sink)` reports into the sink and returns the
// partial module — panic-mode recovery resynchronizes at statement and
// top-level-function boundaries so one run reports all errors.
#pragma once

#include "common/diag.hpp"
#include "frontend/ast.hpp"

namespace dace::fe {

/// Parse a DaCeLang module. Throws dace::Error with line:col info and
/// caret-rendered context on failure (all errors in one message).
Module parse(const std::string& source);

/// Recovering variant: collects all diagnostics into `sink` and returns
/// the partial module (functions that parsed cleanly).  Never throws on
/// malformed input; check sink.has_errors().
Module parse(const std::string& source, diag::DiagSink& sink);

/// Parse a single expression (for tests and interstate conditions).
ExprPtr parse_expression(const std::string& source);

}  // namespace dace::fe
