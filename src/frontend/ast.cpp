#include "frontend/ast.hpp"

#include "common/diag.hpp"

namespace dace::fe {

const Function& Module::function(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) return f;
  }
  diag::Diagnostic d;
  d.code = "E212";
  d.message = "no @dace.program named '" + name + "' in module";
  throw diag::DiagError(d, d.format());
}

ExprPtr make_num(double v, int line, int col) {
  auto e = std::make_shared<ExprNode>();
  e->kind = ExKind::Num;
  e->num = v;
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr make_int(int64_t v, int line, int col) {
  auto e = make_num(static_cast<double>(v), line, col);
  e->num_is_int = true;
  e->inum = v;
  return e;
}

ExprPtr make_name(std::string n, int line, int col) {
  auto e = std::make_shared<ExprNode>();
  e->kind = ExKind::Name;
  e->name = std::move(n);
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr make_binop(std::string op, ExprPtr a, ExprPtr b, int line, int col) {
  auto e = std::make_shared<ExprNode>();
  e->kind = ExKind::BinOp;
  e->name = std::move(op);
  e->args = {std::move(a), std::move(b)};
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr make_unop(std::string op, ExprPtr a, int line, int col) {
  auto e = std::make_shared<ExprNode>();
  e->kind = ExKind::UnOp;
  e->name = std::move(op);
  e->args = {std::move(a)};
  e->line = line;
  e->col = col;
  return e;
}

}  // namespace dace::fe
