// Abstract syntax tree of DaCeLang, the annotated Python subset.
//
// DaCeLang is the C++ stand-in for the paper's `@dace.program`-decorated
// Python functions: indentation-based syntax, NumPy-style array
// expressions with slicing and broadcasting, `@` matrix products,
// `dace.float64[N, N]` type annotations, `range` loops, `dace.map`
// parallel loops, and `dace.comm.*` explicit communication.  The parser
// (parser.hpp) produces this AST; lowering.hpp translates it to SDFGs
// following Table 1 of the paper, and the eager interpreter
// (runtime/eager_interpreter.hpp) executes it directly as the NumPy
// baseline.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/types.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::fe {

struct ExprNode;
using ExprPtr = std::shared_ptr<ExprNode>;
struct StmtNode;
using StmtPtr = std::shared_ptr<StmtNode>;

enum class ExKind {
  Num,        // numeric literal
  Name,       // identifier, possibly dotted: "np.sqrt", "dace.comm.Isend"
  BinOp,      // args[0] op args[1]; op in + - * / ** @ % // < <= > >= == != and or
  UnOp,       // op args[0]; op in - not
  Call,       // base(args..., kwargs...)
  Subscript,  // base[slices...]
  Tuple,      // (args...)
};

/// One component of a subscript: either a single index expression or a
/// slice begin:end:step with optional parts.
struct SliceItem {
  bool is_index = false;
  ExprPtr index;                 // when is_index
  ExprPtr begin, end, step;      // any may be null (defaults)
};

struct ExprNode {
  ExKind kind = ExKind::Num;
  int line = 0;
  int col = 0;  // 1-based source column; 0 = unknown

  double num = 0;                // Num
  bool num_is_int = false;
  int64_t inum = 0;

  std::string name;              // Name (dotted), BinOp/UnOp operator
  ExprPtr base;                  // Call callee / Subscript base
  std::vector<ExprPtr> args;     // operands / call args / tuple elems
  std::vector<std::pair<std::string, ExprPtr>> kwargs;  // call keywords
  std::vector<SliceItem> slices; // Subscript
};

enum class StKind { Assign, AugAssign, For, If, While, ExprStmt, Pass };

struct StmtNode {
  StKind kind = StKind::Pass;
  int line = 0;
  int col = 0;  // 1-based source column; 0 = unknown

  ExprPtr target;                // Assign/AugAssign LHS
  ExprPtr value;                 // Assign/AugAssign RHS, ExprStmt expression
  std::string aug_op;            // AugAssign: "+" "-" "*" "/"

  std::vector<std::string> loop_vars;  // For
  ExprPtr iter;                        // For: range(...) or dace.map[...]
  ExprPtr cond;                        // If / While condition
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;
};

/// Function parameter with its static symbolic type annotation
/// (Section 2.2: static symbolic typing for AOT compilation).
struct Param {
  std::string name;
  ir::DType dtype = ir::DType::f64;
  std::vector<sym::Expr> shape;  // empty = scalar
};

struct Function {
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  bool auto_optimize = false;            // @dace.program(auto_optimize=True)
  std::optional<ir::DeviceType> device;  // ..., device=DeviceType.GPU
};

struct Module {
  std::vector<Function> functions;
  const Function& function(const std::string& name) const;
};

// Convenience constructors used by the parser and tests.  `col` is the
// 1-based source column (0 = unknown) threaded into diagnostics.
ExprPtr make_num(double v, int line, int col = 0);
ExprPtr make_int(int64_t v, int line, int col = 0);
ExprPtr make_name(std::string n, int line, int col = 0);
ExprPtr make_binop(std::string op, ExprPtr a, ExprPtr b, int line,
                   int col = 0);
ExprPtr make_unop(std::string op, ExprPtr a, int line, int col = 0);

}  // namespace dace::fe
