#include "frontend/lowering.hpp"

#include <algorithm>
#include <functional>

#include "common/diag.hpp"
#include "common/obs.hpp"
#include "frontend/parser.hpp"
#include "runtime/tensor_ops.hpp"

namespace dace::fe {

namespace {

/// Source location carried through lowering helpers (1-based; 0 unknown).
struct Loc {
  int line = 0;
  int col = 0;
};
Loc loc(const ExprPtr& e) { return {e->line, e->col}; }
Loc loc(const StmtNode& s) { return {s.line, s.col}; }

using ir::CodeExpr;
using ir::CodeOp;
using ir::DType;
using ir::Memlet;
using ir::SDFG;
using ir::State;
using ir::WCR;
using sym::Expr;
using sym::Range;
using sym::Subset;

bool dims_equal(const Expr& a, const Expr& b) { return a.equals(b); }
bool dim_is_one(const Expr& a) { return a.is_one(); }

/// The value category produced by lowering an expression.
struct Operand {
  enum class K { Array, Const, Symbol };
  K k = K::Const;

  // Array: a (possibly sliced) view into a container.
  std::string container;
  Subset subset;                  // rank == container rank
  std::vector<int> dim_map;       // container dim -> view dim, or -1 (indexed)
  std::vector<Expr> view_shape;   // shape after dropping indexed dims
  std::vector<int> align;         // view dim -> result dim (empty: trailing)
  DType dtype = DType::f64;
  bool fresh = false;             // freshly materialized transient

  // Const:
  double cval = 0;
  // Symbol:
  std::string sym;

  bool is_array() const { return k == K::Array; }
  bool scalar_like() const { return k != K::Array || view_shape.empty(); }

  static Operand constant(double v) {
    Operand o;
    o.k = K::Const;
    o.cval = v;
    return o;
  }
  static Operand symbol(std::string s) {
    Operand o;
    o.k = K::Symbol;
    o.sym = std::move(s);
    return o;
  }
  static Operand whole(const ir::DataDesc& d, bool fresh = false) {
    Operand o;
    o.k = K::Array;
    o.container = d.name;
    o.subset = Subset::full(d.shape);
    o.view_shape = d.shape;
    o.dim_map.resize(d.shape.size());
    for (size_t i = 0; i < d.shape.size(); ++i) o.dim_map[i] = (int)i;
    o.dtype = d.dtype;
    o.fresh = fresh;
    return o;
  }
};

/// Reference to a tasklet input discovered while translating scalar code.
struct InputRef {
  std::string conn;
  std::string container;  // empty for local-scalar refs
  Subset subset;          // element subset into container
  int local_access = -1;  // inner access node id for local scalars
};

/// Previously lowered module functions available as callees.
struct KnownFunction {
  std::shared_ptr<ir::SDFG> sdfg;
  std::vector<Param> params;
};
using KnownFunctions = std::map<std::string, KnownFunction>;

class Lowerer {
 public:
  Lowerer(const Function& f, const KnownFunctions* known,
          diag::DiagSink* sink = nullptr)
      : func_(f), known_(known), sink_(sink) {}

  std::unique_ptr<SDFG> run() {
    sdfg_ = std::make_unique<SDFG>(func_.name);
    // Arguments: arrays and float scalars become containers; integer
    // scalars become SDFG symbols (usable in ranges and shapes), matching
    // DaCe's treatment of size-like arguments.
    for (const auto& p : func_.params) {
      if (p.shape.empty() && ir::dtype_is_integer(p.dtype)) {
        sdfg_->add_symbol(p.name);
        vars_[p.name] = Var{Var::K::Symbol, p.name};
        continue;
      }
      sdfg_->add_array(p.name, p.dtype, p.shape);
      sdfg_->add_arg(p.name);
      vars_[p.name] = Var{Var::K::Array, p.name};
    }
    State& init = sdfg_->add_state("init", /*is_start=*/true);
    (void)init;
    last_state_ = sdfg_->start_state();
    lower_block(func_.body);
    sdfg_->validate();
    return std::move(sdfg_);
  }

 private:
  struct Var {
    enum class K { Array, Symbol };
    K k;
    std::string target;  // container or symbol name
  };

  const Function& func_;
  const KnownFunctions* known_ = nullptr;
  diag::DiagSink* sink_ = nullptr;
  std::unique_ptr<SDFG> sdfg_;
  int last_state_ = -1;
  std::map<std::string, Var> vars_;
  int temp_counter_ = 0;

  // Lowering stops at the first error per function (a half-lowered SDFG
  // would be inconsistent); the diagnostic is recorded in the sink (when
  // present) and thrown so compile_to_sdfg can recover per function.
  [[noreturn]] void fail(const char* code, int line, int col,
                         const std::string& msg) {
    diag::Diagnostic d;
    d.code = code;
    d.line = line;
    d.col = col;
    d.message = msg;
    d.notes.push_back("while lowering function '" + func_.name + "'");
    if (sink_) sink_->report(d);
    std::string rendered = "lower: " + msg + " (" + func_.name + ":" +
                           std::to_string(line);
    if (col > 0) rendered += ":" + std::to_string(col);
    rendered += ") [" + std::string(code) + "]";
    throw diag::DiagError(std::move(d), rendered);
  }
  [[noreturn]] void fail(const char* code, Loc at, const std::string& msg) {
    fail(code, at.line, at.col, msg);
  }
  [[noreturn]] void fail(const char* code, const ExprPtr& e,
                         const std::string& msg) {
    fail(code, e->line, e->col, msg);
  }
  [[noreturn]] void fail(const char* code, const StmtNode& st,
                         const std::string& msg) {
    fail(code, st.line, st.col, msg);
  }

  // -- state machine helpers -------------------------------------------------
  int state_id_of(State& s) { return sdfg_->state_id(&s); }

  State& new_state(const std::string& label) {
    State& s = sdfg_->add_state(label);
    int sid = state_id_of(s);
    if (last_state_ >= 0) sdfg_->add_interstate_edge(last_state_, sid);
    last_state_ = sid;
    return s;
  }

  // -- symbolic conversion -----------------------------------------------------
  Expr index_expr(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        if (!e->num_is_int) fail("E304", e, "non-integer index");
        return Expr(e->inum);
      case ExKind::Name: {
        auto it = vars_.find(e->name);
        if (it != vars_.end()) {
          if (it->second.k == Var::K::Symbol)
            return Expr::symbol(it->second.target);
          fail("E304", e, "index uses array '" + e->name + "'");
        }
        // Undeclared names in index expressions are free size symbols
        // (the implicit `dace.symbol` declaration of Section 2.2).
        sdfg_->add_symbol(e->name);
        return Expr::symbol(e->name);
      }
      case ExKind::BinOp: {
        Expr a = index_expr(e->args[0]);
        Expr b = index_expr(e->args[1]);
        if (e->name == "+") return a + b;
        if (e->name == "-") return a - b;
        if (e->name == "*") return a * b;
        if (e->name == "//") return sym::floordiv(a, b);
        if (e->name == "%") return sym::mod(a, b);
        fail("E304", e, "unsupported index operator '" + e->name + "'");
      }
      case ExKind::UnOp:
        if (e->name == "-") return -index_expr(e->args[0]);
        fail("E304", e, "unsupported index operator");
      case ExKind::Call: {
        if (e->base && e->base->kind == ExKind::Name) {
          const std::string& fn = e->base->name;
          if (fn == "min" && e->args.size() == 2)
            return sym::min(index_expr(e->args[0]), index_expr(e->args[1]));
          if (fn == "max" && e->args.size() == 2)
            return sym::max(index_expr(e->args[0]), index_expr(e->args[1]));
        }
        fail("E304", e, "unsupported call in index");
      }
      default:
        fail("E304", e, "unsupported index expression");
    }
  }

  /// Resolve a slice bound; negative constants wrap around `size`.
  Expr slice_bound(const ExprPtr& e, const Expr& size) {
    Expr v = index_expr(e);
    if (v.is_constant() && v.constant() < 0) return size + v;
    return v;
  }

  // -- subscripts -------------------------------------------------------------
  Operand resolve_subscript(const ExprPtr& e) {
    DACE_CHECK(e->kind == ExKind::Subscript, "internal: not a subscript");
    if (e->base->kind != ExKind::Name)
      fail("E304", e, "subscript base must be a variable");
    auto it = vars_.find(e->base->name);
    if (it == vars_.end() || it->second.k != Var::K::Array)
      fail("E301", e, "subscript of unknown array '" + e->base->name + "'");
    const ir::DataDesc& d = sdfg_->array(it->second.target);

    Operand o;
    o.k = Operand::K::Array;
    o.container = d.name;
    o.dtype = d.dtype;
    std::vector<Range> ranges;
    int view_dim = 0;
    for (size_t dim = 0; dim < d.rank(); ++dim) {
      if (dim < e->slices.size()) {
        const SliceItem& s = e->slices[dim];
        if (s.is_index) {
          Expr idx = index_expr(s.index);
          if (idx.is_constant() && idx.constant() < 0) idx = d.shape[dim] + idx;
          ranges.push_back(Range::index(idx));
          o.dim_map.push_back(-1);
          continue;
        }
        Expr b = s.begin ? slice_bound(s.begin, d.shape[dim]) : Expr(0);
        Expr en = s.end ? slice_bound(s.end, d.shape[dim]) : d.shape[dim];
        Expr st = s.step ? index_expr(s.step) : Expr(1);
        ranges.emplace_back(b, en, st);
        o.dim_map.push_back(view_dim++);
        o.view_shape.push_back(ranges.back().size());
      } else {
        ranges.emplace_back(Expr(0), d.shape[dim]);
        o.dim_map.push_back(view_dim++);
        o.view_shape.push_back(d.shape[dim]);
      }
    }
    if (e->slices.size() > d.rank())
      fail("E304", e, "too many subscripts for '" + d.name + "'");
    o.subset = Subset(std::move(ranges));
    return o;
  }

  // -- broadcasting -------------------------------------------------------------
  /// Broadcast operand view shapes into a result shape; `align` maps each
  /// operand's view dims to result dims.
  std::vector<Expr> broadcast_operands(const std::vector<Operand>& ops,
                                       Loc at) {
    // Determine result rank: max over (align ? max align+1 : view rank).
    size_t rank = 0;
    for (const auto& o : ops) {
      if (!o.is_array()) continue;
      if (!o.align.empty()) {
        for (int a : o.align) rank = std::max(rank, (size_t)a + 1);
      } else {
        rank = std::max(rank, o.view_shape.size());
      }
    }
    std::vector<Expr> shape(rank, Expr(1));
    std::vector<bool> fixed(rank, false);
    for (const auto& o : ops) {
      if (!o.is_array()) continue;
      for (size_t j = 0; j < o.view_shape.size(); ++j) {
        size_t r = o.align.empty() ? j + (rank - o.view_shape.size())
                                   : (size_t)o.align[j];
        const Expr& dim = o.view_shape[j];
        if (dim_is_one(dim)) continue;
        if (!fixed[r]) {
          shape[r] = dim;
          fixed[r] = true;
        } else if (!dims_equal(shape[r], dim)) {
          fail("E303", at, "broadcast mismatch: " + shape[r].to_string() +
                              " vs " + dim.to_string());
        }
      }
    }
    return shape;
  }

  /// Element index expressions (one per container dim) for an operand read
  /// within a map over `params` spanning `result_shape`.
  std::vector<Expr> element_indices(const Operand& o,
                                    const std::vector<std::string>& params,
                                    const std::vector<Expr>& result_shape) {
    std::vector<Expr> idx;
    size_t rank = result_shape.size();
    for (size_t cd = 0; cd < o.subset.dims(); ++cd) {
      const Range& r = o.subset.range(cd);
      if (o.dim_map[cd] < 0) {
        idx.push_back(r.begin);
        continue;
      }
      size_t j = (size_t)o.dim_map[cd];
      size_t rd = o.align.empty() ? j + (rank - o.view_shape.size())
                                  : (size_t)o.align[j];
      if (dim_is_one(o.view_shape[j]) && !dim_is_one(result_shape[rd])) {
        idx.push_back(r.begin);  // broadcast along this dim
      } else {
        idx.push_back(r.begin + Expr::symbol(params[rd]) * r.step);
      }
    }
    return idx;
  }

  std::vector<std::string> make_params(size_t rank) {
    std::vector<std::string> params;
    for (size_t i = 0; i < rank; ++i)
      params.push_back("__i" + std::to_string(i));
    return params;
  }

  // -- elementwise map construction ------------------------------------------
  /// Build one state with a map scope computing
  ///   out[target] = code(inputs)  elementwise over `result_shape`.
  /// If `out` is empty, a fresh transient is allocated and returned.
  Operand build_elementwise(
      const std::string& label, const std::vector<Operand>& ins,
      const std::function<CodeExpr(const std::vector<CodeExpr>&)>& make_code,
      Loc at, Operand out = {}, DType out_dtype = DType::f64) {
    std::vector<Expr> result_shape;
    if (out.is_array()) {
      result_shape = out.view_shape;
      // Check input shapes broadcast into the target.
      std::vector<Operand> all = ins;
      all.push_back(out);
      std::vector<Expr> b = broadcast_operands(all, at);
      if (b.size() != result_shape.size())
        fail("E303", at, "assignment shape rank mismatch");
      for (size_t i = 0; i < b.size(); ++i) {
        if (!dims_equal(b[i], result_shape[i]) && !dim_is_one(b[i]))
          fail("E303", at, "assignment shape mismatch");
      }
    } else {
      result_shape = broadcast_operands(ins, at);
      DType dt = out_dtype;
      if (dt == DType::f64) {
        bool any = false;
        for (const auto& o : ins) {
          if (o.is_array()) {
            dt = any ? rt::ops::promote(dt, o.dtype) : o.dtype;
            any = true;
          }
        }
      }
      ir::DataDesc& td = sdfg_->add_temp("__tmp", dt, result_shape);
      out = Operand::whole(td, /*fresh=*/true);
    }

    // Scalar case: a plain tasklet state, no map.
    State& st = new_state(label);
    std::vector<std::string> params = make_params(result_shape.size());
    int entry = -1, exit = -1;
    bool scalar = result_shape.empty();
    if (!scalar) {
      std::vector<Range> ranges;
      for (const auto& s : result_shape) ranges.emplace_back(Expr(0), s);
      auto [e, x] = st.add_map(label + "_map", params, Subset(ranges));
      entry = e;
      exit = x;
    }

    // Inputs: access -> (entry ->) tasklet.
    std::vector<CodeExpr> in_refs;
    std::vector<std::string> in_conns;
    std::map<std::string, int> outer_access;
    struct Pending {
      std::string conn;
      std::string container;
      Subset element;
    };
    std::vector<Pending> pend;
    int ctr = 0;
    for (const auto& o : ins) {
      switch (o.k) {
        case Operand::K::Const:
          in_refs.push_back(CodeExpr::constant(o.cval));
          break;
        case Operand::K::Symbol:
          in_refs.push_back(CodeExpr::symbol(o.sym));
          break;
        case Operand::K::Array: {
          std::string conn = "__in" + std::to_string(ctr++);
          in_refs.push_back(CodeExpr::input(conn));
          in_conns.push_back(conn);
          std::vector<Expr> idx = element_indices(o, params, result_shape);
          pend.push_back({conn, o.container, Subset::element(idx)});
          break;
        }
      }
    }
    CodeExpr code = make_code(in_refs);
    int tl = st.add_tasklet(label + "_t", in_conns, code);

    for (const auto& p : pend) {
      int acc;
      auto it = outer_access.find(p.container);
      if (it == outer_access.end()) {
        acc = st.add_access(p.container);
        outer_access[p.container] = acc;
      } else {
        acc = it->second;
      }
      if (scalar) {
        st.add_edge(acc, "", tl, p.conn, Memlet(p.container, p.element));
      } else {
        // Outer edge carries the union of per-iteration reads (precise
        // when monotone; whole container otherwise, marked dynamic).
        const auto* men = st.node_as<ir::MapEntry>(entry);
        auto uni = union_over_params(p.element, params, men->range);
        const auto& d = sdfg_->array(p.container);
        Memlet outer(p.container,
                     uni ? *uni : Subset::full(d.shape));
        outer.dynamic = !uni.has_value();
        st.add_edge(acc, "", entry, "IN_" + p.container, std::move(outer));
        st.add_edge(entry, "OUT_" + p.container, tl, p.conn,
                    Memlet(p.container, p.element));
      }
    }
    if (!scalar && pend.empty()) {
      // Degenerate: map with no inputs still needs entry->tasklet ordering.
      st.add_edge(entry, "", tl, "", Memlet());
    }

    // Output: tasklet -> (exit ->) access.
    int oacc = st.add_access(out.container);
    std::vector<Expr> oidx = element_indices(out, params, result_shape);
    if (scalar) {
      st.add_edge(tl, "__out", oacc, "",
                  Memlet(out.container, Subset::element(oidx)));
    } else {
      st.add_edge(tl, "__out", exit, "IN_" + out.container,
                  Memlet(out.container, Subset::element(oidx)));
      st.add_edge(exit, "OUT_" + out.container, oacc, "",
                  Memlet(out.container, out.subset));
    }
    Operand res = out;
    return res;
  }

  Operand ew_binary(CodeOp op, const Operand& a, const Operand& b, Loc at,
                    const std::string& label) {
    if (a.k == Operand::K::Const && b.k == Operand::K::Const) {
      std::map<std::string, double> none;
      return Operand::constant(
          CodeExpr::binary(op, CodeExpr::constant(a.cval),
                           CodeExpr::constant(b.cval))
              .eval(none, {}));
    }
    return build_elementwise(
        label, {a, b},
        [&](const std::vector<CodeExpr>& in) {
          return CodeExpr::binary(op, in[0], in[1]);
        },
        at);
  }

  Operand ew_unary(CodeOp op, const Operand& a, Loc at,
                   const std::string& label) {
    if (a.k == Operand::K::Const) {
      std::map<std::string, double> none;
      return Operand::constant(
          CodeExpr::unary(op, CodeExpr::constant(a.cval)).eval(none, {}));
    }
    return build_elementwise(
        label, {a},
        [&](const std::vector<CodeExpr>& in) {
          return CodeExpr::unary(op, in[0]);
        },
        at);
  }

  /// Copy (or broadcast-fill) `value` into the view `target`.
  void copy_into(const Operand& target, const Operand& value, Loc at) {
    DACE_CHECK(target.is_array(), "internal: copy target not array");
    build_elementwise(
        "assign", {value},
        [&](const std::vector<CodeExpr>& in) {
          return in.empty() ? (value.k == Operand::K::Symbol
                                   ? CodeExpr::symbol(value.sym)
                                   : CodeExpr::constant(value.cval))
                            : in[0];
        },
        at, target);
  }

  // -- library nodes ------------------------------------------------------------
  /// View dims attr string: container dims that form the operand's view.
  static std::string viewdims(const Operand& o) {
    std::string s;
    for (size_t cd = 0; cd < o.dim_map.size(); ++cd) {
      if (o.dim_map[cd] >= 0) {
        if (!s.empty()) s += ",";
        s += std::to_string(cd);
      }
    }
    return s;
  }

  Operand matmul(const Operand& a, const Operand& b, Loc at) {
    if (!a.is_array() || !b.is_array()) fail("E302", at, "'@' requires arrays");
    size_t ra = a.view_shape.size(), rb = b.view_shape.size();
    std::vector<Expr> oshape;
    if (ra == 2 && rb == 2) {
      if (!dims_equal(a.view_shape[1], b.view_shape[0]))
        fail("E303", at, "matmul inner dimension mismatch");
      oshape = {a.view_shape[0], b.view_shape[1]};
    } else if (ra == 2 && rb == 1) {
      oshape = {a.view_shape[0]};
    } else if (ra == 1 && rb == 2) {
      oshape = {b.view_shape[1]};
    } else if (ra == 1 && rb == 1) {
      oshape = {};
    } else {
      fail("E303", at, "unsupported matmul ranks");
    }
    DType dt = rt::ops::promote(a.dtype, b.dtype);
    ir::DataDesc& td = sdfg_->add_temp("__mm", dt, oshape);
    State& st = new_state("matmul");
    int na = st.add_access(a.container);
    int nb = st.add_access(b.container);
    int no = st.add_access(td.name);
    int lib = st.add_library("MatMul");
    auto* ln = st.node_as<ir::LibraryNode>(lib);
    ln->attrs["viewdims_a"] = viewdims(a);
    ln->attrs["viewdims_b"] = viewdims(b);
    st.add_edge(na, "", lib, "_a", Memlet(a.container, a.subset));
    st.add_edge(nb, "", lib, "_b", Memlet(b.container, b.subset));
    st.add_edge(lib, "_c", no, "", Memlet(td.name, Subset::full(td.shape)));
    return Operand::whole(td, /*fresh=*/true);
  }

  Operand reduce(const std::string& redop, const Operand& in,
                 std::optional<int> axis, Loc at) {
    if (!in.is_array()) fail("E302", at, "reduction of non-array");
    std::vector<Expr> oshape;
    if (axis) {
      int ax = *axis;
      if (ax < 0) ax += (int)in.view_shape.size();
      if (ax < 0 || ax >= (int)in.view_shape.size())
        fail("E302", at, "bad reduction axis");
      for (int j = 0; j < (int)in.view_shape.size(); ++j) {
        if (j != ax) oshape.push_back(in.view_shape[j]);
      }
    }
    ir::DataDesc& td = sdfg_->add_temp("__red", in.dtype, oshape);
    State& st = new_state("reduce");
    int ni = st.add_access(in.container);
    int no = st.add_access(td.name);
    int lib = st.add_library("Reduce");
    auto* ln = st.node_as<ir::LibraryNode>(lib);
    ln->attrs["op"] = redop;
    ln->attrs["viewdims_in"] = viewdims(in);
    if (axis) ln->attrs["axis"] = std::to_string(*axis);
    st.add_edge(ni, "", lib, "_in", Memlet(in.container, in.subset));
    st.add_edge(lib, "_out", no, "", Memlet(td.name, Subset::full(td.shape)));
    return Operand::whole(td, /*fresh=*/true);
  }

  // -- expression lowering (top level) -----------------------------------------
  Operand lower_expr(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        return Operand::constant(e->num);
      case ExKind::Name: {
        auto it = vars_.find(e->name);
        if (it != vars_.end()) {
          if (it->second.k == Var::K::Symbol)
            return Operand::symbol(it->second.target);
          return Operand::whole(sdfg_->array(it->second.target));
        }
        if (sdfg_->has_symbol(e->name)) return Operand::symbol(e->name);
        fail("E301", e, "unknown name '" + e->name + "'");
      }
      case ExKind::Subscript:
        return resolve_subscript(e);
      case ExKind::UnOp:
        if (e->name == "-")
          return ew_unary(CodeOp::Neg, lower_expr(e->args[0]), loc(e), "neg");
        fail("E302", e, "unsupported unary operator");
      case ExKind::BinOp: {
        const std::string& op = e->name;
        if (op == "@")
          return matmul(lower_expr(e->args[0]), lower_expr(e->args[1]),
                        loc(e));
        Operand a = lower_expr(e->args[0]);
        Operand b = lower_expr(e->args[1]);
        static const std::map<std::string, CodeOp> ops = {
            {"+", CodeOp::Add}, {"-", CodeOp::Sub}, {"*", CodeOp::Mul},
            {"/", CodeOp::Div}, {"**", CodeOp::Pow}, {"%", CodeOp::Mod},
            {"<", CodeOp::Lt}, {"<=", CodeOp::Le}, {">", CodeOp::Gt},
            {">=", CodeOp::Ge}, {"==", CodeOp::Eq}, {"!=", CodeOp::Ne},
            {"and", CodeOp::And}, {"or", CodeOp::Or}};
        auto it = ops.find(op);
        if (it == ops.end()) {
          if (op == "//") {
            Operand d = ew_binary(CodeOp::Div, a, b, loc(e), "floordiv");
            return ew_unary(CodeOp::Floor, d, loc(e), "floor");
          }
          fail("E302", e, "unsupported operator '" + op + "'");
        }
        return ew_binary(it->second, a, b, loc(e), "op_" + op_label(op));
      }
      case ExKind::Call:
        return lower_call(e);
      case ExKind::Tuple:
        fail("E302", e, "tuple expression not allowed here");
    }
    fail("E302", e, "unsupported expression");
  }

  static std::string op_label(const std::string& op) {
    static const std::map<std::string, std::string> names = {
        {"+", "add"}, {"-", "sub"}, {"*", "mul"}, {"/", "div"},
        {"**", "pow"}, {"%", "mod"}, {"<", "lt"}, {"<=", "le"},
        {">", "gt"}, {">=", "ge"}, {"==", "eq"}, {"!=", "ne"},
        {"and", "and"}, {"or", "or"}};
    auto it = names.find(op);
    return it == names.end() ? "op" : it->second;
  }

  Operand lower_call(const ExprPtr& e) {
    if (!e->base || e->base->kind != ExKind::Name)
      fail("E305", e, "unsupported call form");
    const std::string& fn = e->base->name;

    static const std::map<std::string, CodeOp> unary = {
        {"np.exp", CodeOp::Exp},   {"np.sqrt", CodeOp::Sqrt},
        {"np.log", CodeOp::Log},   {"np.abs", CodeOp::Abs},
        {"np.sin", CodeOp::Sin},   {"np.cos", CodeOp::Cos},
        {"np.tanh", CodeOp::Tanh}, {"np.floor", CodeOp::Floor},
        {"abs", CodeOp::Abs}};
    if (auto it = unary.find(fn); it != unary.end()) {
      if (e->args.size() != 1) fail("E305", e, fn + " takes one argument");
      return ew_unary(it->second, lower_expr(e->args[0]), loc(e),
                      fn.substr(fn.find('.') + 1));
    }
    static const std::map<std::string, CodeOp> binary = {
        {"np.minimum", CodeOp::Min},
        {"np.maximum", CodeOp::Max},
        {"np.power", CodeOp::Pow},
        {"min", CodeOp::Min},
        {"max", CodeOp::Max}};
    if (auto it = binary.find(fn); it != binary.end()) {
      if (e->args.size() != 2) fail("E305", e, fn + " takes two arguments");
      return ew_binary(it->second, lower_expr(e->args[0]),
                       lower_expr(e->args[1]), loc(e),
                       fn.substr(fn.find('.') + 1));
    }
    if (fn == "np.sum" || fn == "np.max" || fn == "np.min") {
      std::optional<int> axis;
      for (const auto& [k, v] : e->kwargs) {
        if (k == "axis") {
          if (!(v->kind == ExKind::Num && v->num_is_int))
            fail("E305", v, "axis must be an integer literal");
          axis = (int)v->inum;
        } else {
          fail("E305", e, "unsupported keyword '" + k + "'");
        }
      }
      std::string op = fn == "np.sum" ? "sum" : (fn == "np.max" ? "max" : "min");
      return reduce(op, lower_expr(e->args[0]), axis, loc(e));
    }
    if (fn == "np.dot") {
      if (e->args.size() != 2) fail("E305", e, "np.dot takes two arguments");
      return matmul(lower_expr(e->args[0]), lower_expr(e->args[1]), loc(e));
    }
    if (fn == "np.outer") {
      if (e->args.size() != 2) fail("E305", e, "np.outer takes two arguments");
      Operand a = lower_expr(e->args[0]);
      Operand b = lower_expr(e->args[1]);
      if (!a.is_array() || a.view_shape.size() != 1 || !b.is_array() ||
          b.view_shape.size() != 1)
        fail("E305", e, "np.outer requires vectors");
      a.align = {0};
      b.align = {1};
      return build_elementwise(
          "outer", {a, b},
          [](const std::vector<CodeExpr>& in) {
            return CodeExpr::binary(CodeOp::Mul, in[0], in[1]);
          },
          loc(e));
    }
    if (fn == "np.transpose") {
      if (e->args.size() != 1) fail("E305", e, "np.transpose takes one array");
      Operand a = lower_expr(e->args[0]);
      if (!a.is_array() || a.view_shape.size() != 2)
        fail("E305", e, "np.transpose requires a 2-D array");
      a.align = {1, 0};  // view dim 0 -> result dim 1 and vice versa
      return build_elementwise(
          "transpose", {a},
          [](const std::vector<CodeExpr>& in) { return in[0]; }, loc(e));
    }
    if (fn == "np.copy") {
      Operand a = lower_expr(e->args[0]);
      return build_elementwise(
          "copy", {a},
          [](const std::vector<CodeExpr>& in) { return in[0]; }, loc(e));
    }
    if (fn == "np.float64" || fn == "np.float32" || fn == "float") {
      return lower_expr(e->args[0]);
    }
    fail("E305", e, "unsupported function '" + fn + "'");
  }

  // -- allocations --------------------------------------------------------------
  DType dtype_of_annotation(const ExprPtr& e) {
    if (e->kind == ExKind::Name) {
      const std::string& n = e->name;
      if (n == "np.float64") return DType::f64;
      if (n == "np.float32") return DType::f32;
      if (n == "np.int64") return DType::i64;
      if (n == "np.int32") return DType::i32;
      if (n == "MPI_Request") return DType::i64;  // opaque request handles
      // A.dtype -> dtype of variable A
      auto dotpos = n.rfind(".dtype");
      if (dotpos != std::string::npos && dotpos == n.size() - 6) {
        std::string base = n.substr(0, dotpos);
        auto it = vars_.find(base);
        if (it != vars_.end() && it->second.k == Var::K::Array)
          return sdfg_->array(it->second.target).dtype;
      }
    }
    fail("E305", e, "unsupported dtype annotation");
  }

  bool is_allocation_call(const ExprPtr& e, std::string* which) {
    if (e->kind != ExKind::Call || !e->base ||
        e->base->kind != ExKind::Name)
      return false;
    static const std::set<std::string> allocs = {
        "np.empty", "np.zeros", "np.ones", "np.full",
        "np.empty_like", "np.zeros_like", "np.ones_like"};
    if (!allocs.count(e->base->name)) return false;
    *which = e->base->name;
    return true;
  }

  void lower_allocation(const std::string& name, const ExprPtr& e,
                        const std::string& which) {
    std::vector<Expr> shape;
    DType dtype = DType::f64;
    bool like = which.find("_like") != std::string::npos;
    if (like) {
      Operand src = lower_expr(e->args[0]);
      if (!src.is_array()) fail("E310", e, "alloc-like of non-array");
      shape = src.view_shape;
      dtype = src.dtype;
    } else {
      const ExprPtr& sh = e->args[0];
      if (sh->kind == ExKind::Tuple) {
        for (const auto& d : sh->args) shape.push_back(index_expr(d));
      } else {
        shape.push_back(index_expr(sh));
      }
    }
    for (const auto& [k, v] : e->kwargs) {
      if (k == "dtype") dtype = dtype_of_annotation(v);
    }
    // Rebind or create the container.
    std::string cname = sdfg_->has_array(name) ? sdfg_->unique_name(name)
                                               : name;
    ir::DataDesc& d = sdfg_->add_array(cname, dtype, shape, /*transient=*/true);
    vars_[name] = Var{Var::K::Array, cname};
    double fill = 0;
    bool do_fill = false;
    if (which == "np.zeros" || which == "np.zeros_like") {
      do_fill = true;
      fill = 0;
    } else if (which == "np.ones" || which == "np.ones_like") {
      do_fill = true;
      fill = 1;
    } else if (which == "np.full") {
      do_fill = true;
      if (!(e->args.size() >= 2 && e->args[1]->kind == ExKind::Num))
        fail("E310", e, "np.full requires a literal fill value");
      fill = e->args[1]->num;
    }
    if (do_fill) {
      copy_into(Operand::whole(d), Operand::constant(fill), loc(e));
    }
  }

  // -- statements ---------------------------------------------------------------
  void lower_block(const std::vector<StmtPtr>& body) {
    for (const auto& st : body) lower_stmt(*st);
  }

  void lower_stmt(const StmtNode& st) {
    switch (st.kind) {
      case StKind::Pass:
        return;
      case StKind::Assign:
        lower_assign(st);
        return;
      case StKind::AugAssign:
        lower_augassign(st);
        return;
      case StKind::For:
        lower_for(st);
        return;
      case StKind::If:
        lower_if(st);
        return;
      case StKind::While:
        lower_while(st);
        return;
      case StKind::ExprStmt:
        lower_expr_stmt(st);
        return;
    }
  }

  void lower_expr_stmt(const StmtNode& st) {
    // Communication calls and calls to other @dace.program functions are
    // the only meaningful bare statements.
    if (st.value->kind == ExKind::Call && st.value->base &&
        st.value->base->kind == ExKind::Name) {
      const std::string& fn = st.value->base->name;
      if (fn.rfind("dace.comm.", 0) == 0) {
        lower_comm_call(st.value);
        return;
      }
      if (known_ && known_->count(fn)) {
        lower_function_call(st.value, known_->at(fn));
        return;
      }
    }
    fail("E302", st, "expression statement has no effect");
  }

  /// Call to another @dace.program: a Nested SDFG node (Table 1).
  void lower_function_call(const ExprPtr& e, const KnownFunction& callee) {
    if (e->args.size() != callee.params.size())
      fail("E305", e, "call to '" + e->base->name + "' expects " +
                          std::to_string(callee.params.size()) + " arguments");
    State& st = new_state("call_" + e->base->name);
    int node = st.add_nested(callee.sdfg);
    auto* nn = st.node_as<ir::NestedSDFGNode>(node);
    for (size_t i = 0; i < e->args.size(); ++i) {
      const Param& p = callee.params[i];
      if (p.shape.empty() && ir::dtype_is_integer(p.dtype)) {
        nn->symbol_mapping[p.name] = index_expr(e->args[i]);
        continue;
      }
      Operand arg = lower_operand_view(e->args[i]);
      // Arrays pass by reference: read and written conservatively.
      nn->in_connectors.insert(p.name);
      nn->out_connectors.insert(p.name);
      int ain = st.add_access(arg.container);
      int aout = st.add_access(arg.container);
      st.add_edge(ain, "", node, p.name, Memlet(arg.container, arg.subset));
      st.add_edge(node, p.name, aout, "", Memlet(arg.container, arg.subset));
    }
  }

  // -- explicit communication (Section 4.3: local-view programming) --------
  // dace.comm.* calls become `comm::*` library nodes; their execution is
  // implemented by the distributed module (distributed/comm_ops.cpp).

  /// Statement-form communication: Isend / Irecv / Waitall / Barrier.
  void lower_comm_call(const ExprPtr& e) {
    const std::string fn = e->base->name.substr(10);  // strip "dace.comm."
    State& st = new_state("comm_" + fn);
    int lib = st.add_library("comm::" + fn);
    auto* ln = st.node_as<ir::LibraryNode>(lib);
    if (fn == "Isend" || fn == "Irecv") {
      if (e->args.size() != 4)
        fail("E308", e, "dace.comm." + fn + " takes (buf, rank, tag, request)");
      Operand buf = lower_operand_view(e->args[0]);
      ln->sym_attrs["peer"] = index_expr(e->args[1]);
      ln->sym_attrs["tag"] = index_expr(e->args[2]);
      Operand req = lower_operand_view(e->args[3]);
      int nb = st.add_access(buf.container);
      int nr_in = st.add_access(req.container);
      int nr_out = st.add_access(req.container);
      if (fn == "Isend") {
        st.add_edge(nb, "", lib, "_buf", Memlet(buf.container, buf.subset));
      } else {
        st.add_edge(lib, "_buf", nb, "", Memlet(buf.container, buf.subset));
      }
      st.add_edge(nr_in, "", lib, "_req_in", Memlet(req.container, req.subset));
      st.add_edge(lib, "_req_out", nr_out, "",
                  Memlet(req.container, req.subset));
      return;
    }
    if (fn == "Waitall") {
      if (e->args.size() != 1) fail("E308", e, "Waitall takes (requests)");
      Operand req = lower_operand_view(e->args[0]);
      int nr_in = st.add_access(req.container);
      int nr_out = st.add_access(req.container);
      st.add_edge(nr_in, "", lib, "_req_in", Memlet(req.container, req.subset));
      st.add_edge(lib, "_req_out", nr_out, "",
                  Memlet(req.container, req.subset));
      return;
    }
    if (fn == "Barrier") {
      if (!e->args.empty()) fail("E308", e, "Barrier takes no arguments");
      return;  // library node alone; pure synchronization
    }
    fail("E308", e, "unsupported communication call 'dace.comm." + fn + "'");
  }

  /// Expression-form communication assigned to a target:
  ///   lA[1:-1, 1:-1] = dace.comm.BlockScatter(A)
  ///   A[:] = dace.comm.BlockGather(lA[1:-1, 1:-1])
  ///   x = dace.comm.Allreduce(lx, 'sum')
  void lower_comm_assign(const Operand& target, const ExprPtr& e) {
    const std::string fn = e->base->name.substr(10);
    if (!(fn == "BlockScatter" || fn == "BlockGather" ||
          fn == "Allreduce" || fn == "Bcast"))
      fail("E308", e,
           "unsupported communication expression 'dace.comm." + fn + "'");
    if (e->args.empty()) fail("E308", e, "dace.comm." + fn + " needs an input");
    Operand in = lower_operand_view(e->args[0]);
    State& st = new_state("comm_" + fn);
    int lib = st.add_library("comm::" + fn);
    int ni = st.add_access(in.container);
    int no = st.add_access(target.container);
    st.add_edge(ni, "", lib, "_in", Memlet(in.container, in.subset));
    st.add_edge(lib, "_out", no, "", Memlet(target.container, target.subset));
  }

  /// Resolve an argument that must be an array view (name or subscript).
  Operand lower_operand_view(const ExprPtr& e) {
    if (e->kind == ExKind::Subscript) return resolve_subscript(e);
    if (e->kind == ExKind::Name) {
      auto it = vars_.find(e->name);
      if (it != vars_.end() && it->second.k == Var::K::Array)
        return Operand::whole(sdfg_->array(it->second.target));
    }
    fail("E305", e, "expected an array view argument");
  }

  static bool is_comm_call(const ExprPtr& e) {
    return e->kind == ExKind::Call && e->base &&
           e->base->kind == ExKind::Name &&
           e->base->name.rfind("dace.comm.", 0) == 0;
  }

  void lower_assign(const StmtNode& st) {
    // Allocation: A = np.empty(...)
    std::string which;
    if (st.target->kind == ExKind::Name &&
        is_allocation_call(st.value, &which)) {
      lower_allocation(st.target->name, st.value, which);
      return;
    }
    // Communication expressions write directly into their target view.
    if (is_comm_call(st.value)) {
      Operand t = st.target->kind == ExKind::Subscript
                      ? resolve_subscript(st.target)
                      : lower_operand_view(st.target);
      lower_comm_assign(t, st.value);
      return;
    }
    if (st.target->kind == ExKind::Name) {
      const std::string& name = st.target->name;
      auto it = vars_.find(name);
      if (it != vars_.end() && it->second.k == Var::K::Symbol)
        fail("E306", st, "cannot assign to loop symbol '" + name + "'");
      Operand v = lower_expr(st.value);
      if (it == vars_.end()) {
        // New local variable.
        if (v.is_array() && v.fresh) {
          vars_[name] = Var{Var::K::Array, v.container};
          return;
        }
        if (v.is_array()) {
          // Materialize a copy of the view.
          ir::DataDesc& d =
              sdfg_->add_array(sdfg_->has_array(name)
                                   ? sdfg_->unique_name(name)
                                   : name,
                               v.dtype, v.view_shape, /*transient=*/true);
          vars_[name] = Var{Var::K::Array, d.name};
          copy_into(Operand::whole(d), v, loc(st));
          return;
        }
        // Scalar local.
        ir::DataDesc& d = sdfg_->add_scalar(
            sdfg_->has_array(name) ? sdfg_->unique_name(name) : name,
            DType::f64, /*transient=*/true);
        vars_[name] = Var{Var::K::Array, d.name};
        copy_into(Operand::whole(d), v, loc(st));
        return;
      }
      // Existing array: copy into it.
      copy_into(Operand::whole(sdfg_->array(it->second.target)), v, loc(st));
      return;
    }
    if (st.target->kind == ExKind::Subscript) {
      Operand t = resolve_subscript(st.target);
      Operand v = lower_expr(st.value);
      copy_into(t, v, loc(st));
      return;
    }
    fail("E306", st, "unsupported assignment target");
  }

  void lower_augassign(const StmtNode& st) {
    Operand t = st.target->kind == ExKind::Subscript
                    ? resolve_subscript(st.target)
                    : lower_expr(st.target);
    if (!t.is_array()) fail("E306", st, "augmented assignment to non-array");
    Operand v = lower_expr(st.value);
    static const std::map<std::string, CodeOp> ops = {{"+", CodeOp::Add},
                                                      {"-", CodeOp::Sub},
                                                      {"*", CodeOp::Mul},
                                                      {"/", CodeOp::Div}};
    CodeOp op = ops.at(st.aug_op);
    build_elementwise(
        "aug_" + op_label(st.aug_op), {t, v},
        [&](const std::vector<CodeExpr>& in) {
          return CodeExpr::binary(op, in[0], in[1]);
        },
        loc(st), t);
  }

  // Range loop -> guard/body states with condition and increment on
  // interstate edges (Fig. 3 of the paper).
  void lower_for(const StmtNode& st) {
    if (st.iter->kind == ExKind::Subscript && st.iter->base &&
        st.iter->base->kind == ExKind::Name &&
        st.iter->base->name == "dace.map") {
      lower_map_for(st);
      return;
    }
    if (!(st.iter->kind == ExKind::Call && st.iter->base &&
          st.iter->base->kind == ExKind::Name &&
          st.iter->base->name == "range"))
      fail("E309", st, "for-loop iterator must be range(...) or dace.map");
    if (st.loop_vars.size() != 1)
      fail("E309", st, "range loop takes one variable");
    const std::string& var = st.loop_vars[0];
    Expr begin(0), end(0), step(1);
    const auto& args = st.iter->args;
    if (args.size() == 1) {
      end = index_expr(args[0]);
    } else if (args.size() >= 2) {
      begin = index_expr(args[0]);
      end = index_expr(args[1]);
      if (args.size() == 3) step = index_expr(args[2]);
    }

    // Shadow handling: remember previous binding.
    std::optional<Var> prev;
    if (auto it = vars_.find(var); it != vars_.end()) prev = it->second;
    vars_[var] = Var{Var::K::Symbol, var};
    sdfg_->add_symbol(var);

    State& guard = sdfg_->add_state("for_guard_" + var);
    int guard_id = state_id_of(guard);
    sdfg_->add_interstate_edge(last_state_, guard_id, CodeExpr(),
                               {{var, begin}});
    State& body = sdfg_->add_state("for_body_" + var);
    int body_id = state_id_of(body);
    CodeExpr cond = CodeExpr::binary(CodeOp::Lt, CodeExpr::symbol(var),
                                     ir::to_code(end));
    sdfg_->add_interstate_edge(guard_id, body_id, cond);
    last_state_ = body_id;
    lower_block(st.body);
    // Back edge with increment.
    sdfg_->add_interstate_edge(last_state_, guard_id, CodeExpr(),
                               {{var, Expr::symbol(var) + step}});
    // Exit edge.
    State& after = sdfg_->add_state("for_after_" + var);
    int after_id = state_id_of(after);
    CodeExpr ncond = CodeExpr::binary(CodeOp::Ge, CodeExpr::symbol(var),
                                      ir::to_code(end));
    sdfg_->add_interstate_edge(guard_id, after_id, ncond);
    last_state_ = after_id;

    if (prev) {
      vars_[var] = *prev;
    } else {
      vars_.erase(var);
    }
  }

  CodeExpr cond_code(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        return CodeExpr::constant(e->num);
      case ExKind::Name: {
        auto it = vars_.find(e->name);
        if (it != vars_.end() && it->second.k == Var::K::Symbol)
          return CodeExpr::symbol(it->second.target);
        if (sdfg_->has_symbol(e->name)) return CodeExpr::symbol(e->name);
        fail("E309", e,
             "conditions may only reference symbols, not '" + e->name + "'");
      }
      case ExKind::BinOp: {
        static const std::map<std::string, CodeOp> ops = {
            {"+", CodeOp::Add}, {"-", CodeOp::Sub}, {"*", CodeOp::Mul},
            {"/", CodeOp::Div}, {"%", CodeOp::Mod}, {"<", CodeOp::Lt},
            {"<=", CodeOp::Le}, {">", CodeOp::Gt}, {">=", CodeOp::Ge},
            {"==", CodeOp::Eq}, {"!=", CodeOp::Ne}, {"and", CodeOp::And},
            {"or", CodeOp::Or}};
        auto it = ops.find(e->name);
        if (it == ops.end()) fail("E309", e, "unsupported condition operator");
        return CodeExpr::binary(it->second, cond_code(e->args[0]),
                                cond_code(e->args[1]));
      }
      case ExKind::UnOp:
        if (e->name == "-")
          return CodeExpr::unary(CodeOp::Neg, cond_code(e->args[0]));
        if (e->name == "not")
          return CodeExpr::unary(CodeOp::Not, cond_code(e->args[0]));
        fail("E309", e, "unsupported condition operator");
      default:
        fail("E309", e, "unsupported condition expression");
    }
  }

  void lower_if(const StmtNode& st) {
    CodeExpr cond = cond_code(st.cond);
    int branch_from = last_state_;
    // Section 2.5 restriction (3): variables first defined inside a branch
    // have control-dependent state and are not visible afterwards.
    std::map<std::string, Var> outer_vars = vars_;
    State& then_entry = sdfg_->add_state("if_then");
    int then_id = state_id_of(then_entry);
    sdfg_->add_interstate_edge(branch_from, then_id, cond);
    last_state_ = then_id;
    lower_block(st.body);
    int then_end = last_state_;
    vars_ = outer_vars;

    CodeExpr ncond = CodeExpr::unary(CodeOp::Not, cond);
    int else_end;
    if (!st.orelse.empty()) {
      State& else_entry = sdfg_->add_state("if_else");
      int else_id = state_id_of(else_entry);
      sdfg_->add_interstate_edge(branch_from, else_id, ncond);
      last_state_ = else_id;
      lower_block(st.orelse);
      else_end = last_state_;
      vars_ = outer_vars;
    } else {
      else_end = -1;
    }

    State& merge = sdfg_->add_state("if_merge");
    int merge_id = state_id_of(merge);
    sdfg_->add_interstate_edge(then_end, merge_id);
    if (else_end >= 0) {
      sdfg_->add_interstate_edge(else_end, merge_id);
    } else {
      sdfg_->add_interstate_edge(branch_from, merge_id, ncond);
    }
    last_state_ = merge_id;
  }

  void lower_while(const StmtNode& st) {
    State& guard = sdfg_->add_state("while_guard");
    int guard_id = state_id_of(guard);
    sdfg_->add_interstate_edge(last_state_, guard_id);
    CodeExpr cond = cond_code(st.cond);
    State& body = sdfg_->add_state("while_body");
    int body_id = state_id_of(body);
    sdfg_->add_interstate_edge(guard_id, body_id, cond);
    last_state_ = body_id;
    lower_block(st.body);
    sdfg_->add_interstate_edge(last_state_, guard_id);
    State& after = sdfg_->add_state("while_after");
    int after_id = state_id_of(after);
    sdfg_->add_interstate_edge(guard_id, after_id,
                               CodeExpr::unary(CodeOp::Not, cond));
    last_state_ = after_id;
  }

  // -- explicit dace.map loops ---------------------------------------------------
  struct MapBody {
    State* st = nullptr;
    int entry = -1, exit = -1;
    std::vector<std::string> params;
    std::map<std::string, int> outer_in;    // container -> outer access id
    std::map<std::string, int> outer_out;   // container -> outer access id
    std::set<std::string> entry_conns;      // containers routed through entry
    std::set<std::string> exit_conns;       // containers routed through exit
    std::map<std::string, int> local_scalars;  // name -> inner access id
  };

  void lower_map_for(const StmtNode& st) {
    std::vector<Range> ranges;
    for (const auto& s : st.iter->slices) {
      if (s.is_index) fail("E307", st, "dace.map requires ranges");
      Expr b = s.begin ? index_expr(s.begin) : Expr(0);
      if (s.end == nullptr) fail("E307", st, "dace.map range needs an end");
      Expr e = index_expr(s.end);
      Expr stp = s.step ? index_expr(s.step) : Expr(1);
      ranges.emplace_back(b, e, stp);
    }
    if (ranges.size() != st.loop_vars.size())
      fail("E307", st, "dace.map rank does not match loop variables");

    MapBody mb;
    mb.st = &new_state("map");
    mb.params = st.loop_vars;
    auto [entry, exit] =
        mb.st->add_map("map_" + std::to_string(st.line), st.loop_vars,
                       Subset(ranges));
    mb.entry = entry;
    mb.exit = exit;

    // Bind params as symbols for index translation.
    std::map<std::string, std::optional<Var>> prev;
    for (const auto& p : st.loop_vars) {
      if (auto it = vars_.find(p); it != vars_.end()) prev[p] = it->second;
      else prev[p] = std::nullopt;
      vars_[p] = Var{Var::K::Symbol, p};
    }

    for (const auto& s : st.body) lower_map_stmt(mb, *s);

    // If the map produced no outputs at all, that is an error.
    if (mb.exit_conns.empty() && mb.local_scalars.empty())
      fail("E307", st, "dace.map body has no effect");
    // Entry with no inputs still needs to dominate tasklets; ensured by
    // construction (every tasklet has an ordering edge from entry if it
    // had no data inputs).

    for (const auto& [p, v] : prev) {
      if (v) {
        vars_[p] = *v;
      } else {
        vars_.erase(p);
      }
    }
  }

  /// Union of an element subset over the map parameter ranges; returns
  /// nullopt when a non-monotone index prevents a precise bound.
  std::optional<Subset> union_over_params(const Subset& element,
                                          const std::vector<std::string>& ps,
                                          const Subset& pranges) {
    std::vector<Range> out;
    for (size_t d = 0; d < element.dims(); ++d) {
      Expr e = element.range(d).begin;
      sym::SubstMap lo_map, hi_map;
      for (size_t i = 0; i < ps.size(); ++i) {
        const Range& pr = pranges.range(i);
        // Determine monotonicity wrt this param via the coefficient.
        sym::SubstMap probe0, probe1;
        probe0[ps[i]] = Expr(0);
        probe1[ps[i]] = Expr(1);
        Expr c = e.subs(probe1) - e.subs(probe0);
        if (c.provably_nonnegative()) {
          lo_map[ps[i]] = pr.begin;
          hi_map[ps[i]] = pr.end - Expr(1);
        } else if (c.provably_nonpositive()) {
          lo_map[ps[i]] = pr.end - Expr(1);
          hi_map[ps[i]] = pr.begin;
        } else {
          return std::nullopt;
        }
      }
      Expr lo = e.subs(lo_map);
      Expr hi = e.subs(hi_map);
      out.emplace_back(lo, hi + Expr(1));
    }
    return Subset(std::move(out));
  }

  void lower_map_stmt(MapBody& mb, const StmtNode& st) {
    switch (st.kind) {
      case StKind::Pass:
        return;
      case StKind::Assign:
        break;
      case StKind::AugAssign:
        break;
      default:
        fail("E307", st,
             "only assignments are supported inside dace.map bodies; use "
             "numpythonic style for complex bodies");
    }

    std::vector<InputRef> inputs;
    CodeExpr code = map_code(mb, st.value, inputs, st.line);

    if (st.kind == StKind::Assign && st.target->kind == ExKind::Name &&
        vars_.count(st.target->name) == 0) {
      // Local scalar definition inside the map scope.
      ir::DataDesc& d =
          sdfg_->add_scalar(sdfg_->unique_name("__s_" + st.target->name),
                            DType::f64, /*transient=*/true);
      int tl = wire_tasklet(mb, "set_" + st.target->name, inputs, code);
      int acc = mb.st->add_access(d.name);
      mb.st->add_edge(tl, "__out", acc, "", Memlet(d.name, Subset{}));
      mb.local_scalars[st.target->name] = acc;
      return;
    }

    // Target: indexed array (or scalar container for WCR).
    std::string container;
    Subset element;
    if (st.target->kind == ExKind::Subscript) {
      Operand t = resolve_subscript(st.target);
      if (!t.view_shape.empty())
        fail("E307", st, "map-body writes must target single elements");
      container = t.container;
      element = t.subset;
    } else if (st.target->kind == ExKind::Name) {
      auto it = vars_.find(st.target->name);
      if (it == vars_.end() || it->second.k != Var::K::Array)
        fail("E301", st, "unknown map-body target");
      const auto& d = sdfg_->array(it->second.target);
      if (!d.is_scalar())
        fail("E307", st, "map-body writes to arrays must be indexed");
      container = d.name;
      element = Subset{};
    } else {
      fail("E307", st, "unsupported map-body target");
    }

    WCR wcr = WCR::None;
    if (st.kind == StKind::AugAssign) {
      // Race detection: the write is conflict-free iff every map parameter
      // appears in the target index expressions.
      std::set<std::string> used;
      for (const auto& r : element.ranges()) r.begin.free_symbols(used);
      bool covers = true;
      for (const auto& p : mb.params) covers &= used.count(p) > 0;
      if (covers) {
        // Read-modify-write without conflicts.
        std::string conn = "__win";
        inputs.push_back(InputRef{conn, container, element, -1});
        static const std::map<std::string, CodeOp> ops = {
            {"+", CodeOp::Add}, {"-", CodeOp::Sub},
            {"*", CodeOp::Mul}, {"/", CodeOp::Div}};
        code = CodeExpr::binary(ops.at(st.aug_op), CodeExpr::input(conn),
                                code);
      } else {
        static const std::map<std::string, WCR> wcrs = {
            {"+", WCR::Sum}, {"*", WCR::Prod}};
        auto it = wcrs.find(st.aug_op);
        if (it == wcrs.end())
          fail("E307", st, "unsupported write-conflict resolution op");
        wcr = it->second;
      }
    }

    int tl = wire_tasklet(mb, "w_" + container, inputs, code);
    // tasklet -> exit -> outer access.
    const auto* me = mb.st->node_as<ir::MapEntry>(mb.entry);
    Memlet inner(container, element, wcr);
    mb.st->add_edge(tl, "__out", mb.exit, "IN_" + container, inner);
    if (!mb.exit_conns.count(container)) {
      mb.exit_conns.insert(container);
      int oacc = mb.st->add_access(container);
      mb.outer_out[container] = oacc;
      auto uni = union_over_params(element, mb.params, me->range);
      Memlet outer(container,
                   uni ? *uni
                       : Subset::full(sdfg_->array(container).shape),
                   wcr);
      outer.dynamic = !uni.has_value();
      mb.st->add_edge(mb.exit, "OUT_" + container, oacc, "", outer);
    } else {
      auto uni = union_over_params(element, mb.params, me->range);
      for (auto& e : mb.st->edges()) {
        if (e.src == mb.exit && e.src_conn == "OUT_" + container) {
          if (uni && !e.memlet.dynamic) {
            e.memlet.subset = Subset::hull(e.memlet.subset, *uni);
          } else {
            e.memlet.subset = Subset::full(sdfg_->array(container).shape);
            e.memlet.dynamic = true;
          }
          if (wcr != e.memlet.wcr) e.memlet.wcr = wcr;  // mixed writes
        }
      }
    }
  }

  int wire_tasklet(MapBody& mb, const std::string& name,
                   const std::vector<InputRef>& inputs, const CodeExpr& code) {
    std::vector<std::string> conns;
    for (const auto& in : inputs) conns.push_back(in.conn);
    int tl = mb.st->add_tasklet(name, conns, code);
    bool any_data = false;
    for (const auto& in : inputs) {
      if (in.local_access >= 0) {
        mb.st->add_edge(in.local_access, "", tl, in.conn,
                        Memlet(container_of_access(mb, in.local_access),
                               Subset{}));
        any_data = true;
        continue;
      }
      // Route through the map entry.
      if (!mb.entry_conns.count(in.container)) {
        mb.entry_conns.insert(in.container);
        int acc = mb.st->add_access(in.container);
        mb.outer_in[in.container] = acc;
        const auto& d = sdfg_->array(in.container);
        const auto* men = mb.st->node_as<ir::MapEntry>(mb.entry);
        auto uni = union_over_params(in.subset, mb.params, men->range);
        Memlet outer(in.container, uni ? *uni : Subset::full(d.shape));
        outer.dynamic = !uni.has_value();
        mb.st->add_edge(acc, "", mb.entry, "IN_" + in.container,
                        std::move(outer));
      } else {
        // Widen the recorded read set with this access.
        const auto* men = mb.st->node_as<ir::MapEntry>(mb.entry);
        auto uni = union_over_params(in.subset, mb.params, men->range);
        for (auto& e : mb.st->edges()) {
          if (e.dst == mb.entry && e.dst_conn == "IN_" + in.container) {
            if (uni && !e.memlet.dynamic) {
              e.memlet.subset = Subset::hull(e.memlet.subset, *uni);
            } else {
              e.memlet.subset =
                  Subset::full(sdfg_->array(in.container).shape);
              e.memlet.dynamic = true;
            }
          }
        }
      }
      mb.st->add_edge(mb.entry, "OUT_" + in.container, tl, in.conn,
                      Memlet(in.container, in.subset));
      any_data = true;
    }
    if (!any_data) {
      mb.st->add_edge(mb.entry, "", tl, "", Memlet());
    }
    return tl;
  }

  std::string container_of_access(MapBody& mb, int access_id) {
    auto* a = mb.st->node_as<ir::AccessNode>(access_id);
    DACE_CHECK(a != nullptr, "internal: not an access node");
    return a->data;
  }

  /// Translate a scalar expression inside a map body to tasklet code,
  /// collecting input references.
  CodeExpr map_code(MapBody& mb, const ExprPtr& e,
                    std::vector<InputRef>& inputs, int line) {
    switch (e->kind) {
      case ExKind::Num:
        return CodeExpr::constant(e->num);
      case ExKind::Name: {
        // Local scalar defined earlier in the map body?
        if (auto it = mb.local_scalars.find(e->name);
            it != mb.local_scalars.end()) {
          std::string conn = "__l" + std::to_string(inputs.size());
          inputs.push_back(InputRef{conn, "", Subset{}, it->second});
          return CodeExpr::input(conn);
        }
        auto it = vars_.find(e->name);
        if (it != vars_.end()) {
          if (it->second.k == Var::K::Symbol)
            return CodeExpr::symbol(it->second.target);
          const auto& d = sdfg_->array(it->second.target);
          if (!d.is_scalar())
            fail("E307", e, "arrays inside map bodies must be indexed: '" +
                                e->name + "'");
          std::string conn = "__c" + std::to_string(inputs.size());
          inputs.push_back(InputRef{conn, d.name, Subset{}, -1});
          return CodeExpr::input(conn);
        }
        if (sdfg_->has_symbol(e->name)) return CodeExpr::symbol(e->name);
        fail("E301", e, "unknown name '" + e->name + "' in map body");
      }
      case ExKind::Subscript: {
        Operand t = resolve_subscript(e);
        if (!t.view_shape.empty())
          fail("E307", e, "map-body reads must be single elements");
        std::string conn = "__r" + std::to_string(inputs.size());
        inputs.push_back(InputRef{conn, t.container, t.subset, -1});
        return CodeExpr::input(conn);
      }
      case ExKind::BinOp: {
        static const std::map<std::string, CodeOp> ops = {
            {"+", CodeOp::Add}, {"-", CodeOp::Sub}, {"*", CodeOp::Mul},
            {"/", CodeOp::Div}, {"**", CodeOp::Pow}, {"%", CodeOp::Mod},
            {"<", CodeOp::Lt}, {"<=", CodeOp::Le}, {">", CodeOp::Gt},
            {">=", CodeOp::Ge}, {"==", CodeOp::Eq}, {"!=", CodeOp::Ne},
            {"and", CodeOp::And}, {"or", CodeOp::Or}};
        auto it = ops.find(e->name);
        if (it == ops.end())
          fail("E302", e, "unsupported operator in map body: '" + e->name + "'");
        CodeExpr a = map_code(mb, e->args[0], inputs, line);
        CodeExpr b = map_code(mb, e->args[1], inputs, line);
        return CodeExpr::binary(it->second, a, b);
      }
      case ExKind::UnOp: {
        CodeExpr a = map_code(mb, e->args[0], inputs, line);
        if (e->name == "-") return CodeExpr::unary(CodeOp::Neg, a);
        if (e->name == "not") return CodeExpr::unary(CodeOp::Not, a);
        fail("E302", e, "unsupported unary operator in map body");
      }
      case ExKind::Call: {
        if (!e->base || e->base->kind != ExKind::Name)
          fail("E305", e, "unsupported call in map body");
        static const std::map<std::string, CodeOp> unary = {
            {"np.exp", CodeOp::Exp},   {"np.sqrt", CodeOp::Sqrt},
            {"np.log", CodeOp::Log},   {"np.abs", CodeOp::Abs},
            {"np.sin", CodeOp::Sin},   {"np.cos", CodeOp::Cos},
            {"np.tanh", CodeOp::Tanh}, {"abs", CodeOp::Abs}};
        static const std::map<std::string, CodeOp> binary = {
            {"np.minimum", CodeOp::Min},
            {"np.maximum", CodeOp::Max},
            {"min", CodeOp::Min},
            {"max", CodeOp::Max},
            {"np.power", CodeOp::Pow}};
        const std::string& fn = e->base->name;
        if (auto it = unary.find(fn); it != unary.end())
          return CodeExpr::unary(it->second,
                                 map_code(mb, e->args[0], inputs, line));
        if (auto it = binary.find(fn); it != binary.end())
          return CodeExpr::binary(it->second,
                                  map_code(mb, e->args[0], inputs, line),
                                  map_code(mb, e->args[1], inputs, line));
        fail("E305", e, "unsupported function in map body: '" + fn + "'");
      }
      default:
        fail("E302", e, "unsupported expression in map body");
    }
  }
};

}  // namespace

std::unique_ptr<ir::SDFG> lower_to_sdfg(const Function& f) {
  return Lowerer(f, nullptr).run();
}

std::unique_ptr<ir::SDFG> lower_to_sdfg(const Function& f,
                                        diag::DiagSink& sink) {
  try {
    return Lowerer(f, nullptr, &sink).run();
  } catch (const diag::DiagError&) {
    return nullptr;  // already recorded in the sink
  } catch (const Error& e) {
    sink.error("E300", 0, 0,
               std::string("internal lowering error: ") + e.what());
    return nullptr;
  }
}

std::unique_ptr<ir::SDFG> compile_to_sdfg(const std::string& source,
                                          diag::DiagSink& sink,
                                          const std::string& name) {
  Module m = [&] {
    OBS_SPAN("frontend", "parse");
    return parse(source, sink);
  }();
  if (m.functions.empty()) {
    if (!sink.has_errors())
      sink.error("E212", 0, 0, "no functions in module");
    return nullptr;
  }
  // Lower every function in order; earlier functions are callable from
  // later ones (calls become nested SDFGs).  A function that fails to
  // lower is skipped (its diagnostics stay in the sink) so the rest of
  // the module is still checked.
  KnownFunctions known;
  std::unique_ptr<ir::SDFG> result;
  const std::string want = name.empty() ? m.functions.back().name : name;
  for (const auto& f : m.functions) {
    obs::Span lspan("frontend", "lower");
    if (lspan.active())
      lspan.set_args("{\"function\":\"" + diag::json_escape(f.name) + "\"}");
    std::unique_ptr<ir::SDFG> sdfg;
    try {
      sdfg = Lowerer(f, &known, &sink).run();
    } catch (const diag::DiagError&) {
      continue;  // recorded in the sink; keep checking later functions
    } catch (const Error& e) {
      sink.error("E300", 0, 0,
                 std::string("internal lowering error: ") + e.what());
      continue;
    }
    if (f.name == want) {
      result = std::move(sdfg);
      // Register a shared clone so later functions can still call it.
      known[f.name] = KnownFunction{std::shared_ptr<ir::SDFG>(result->clone()),
                                    f.params};
    } else {
      known[f.name] =
          KnownFunction{std::shared_ptr<ir::SDFG>(std::move(sdfg)), f.params};
    }
  }
  if (!result && !sink.has_errors())
    sink.error("E212", 0, 0, "no function named '" + want + "'");
  return result;
}

std::unique_ptr<ir::SDFG> compile_to_sdfg(const std::string& source,
                                          const std::string& name) {
  diag::DiagSink sink;
  sink.set_source("<input>", source);
  auto result = compile_to_sdfg(source, sink, name);
  if (!result || sink.has_errors()) throw diag_error(sink);
  return result;
}

}  // namespace dace::fe
