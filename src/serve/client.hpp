// sdfg-serve client library: one-request-per-connection calls with
// timeout, bounded retry and exponential backoff.  E607 (overload shed)
// and E610 (draining) replies are retried honoring the server's
// retry_after_ms hint; transport failures (connect refused, torn reply)
// retry with the client's own backoff.  The embedded ServeFaultPlan
// makes the client double as the chaos driver: request writes go
// through write_frame_faulty.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace dace::serve {

struct ClientOptions {
  std::string socket_path;      // "" = default_socket_path()
  int io_timeout_ms = 30000;    // reply wait bound per attempt
  int retries = 3;              // extra attempts after the first
  int backoff_ms = 20;          // initial backoff; doubles per retry
  int max_frame_kb = 4096;      // reply payload cap
  ServeFaultPlan faults;        // client-side write faults (chaos)

  size_t max_payload() const { return (size_t)max_frame_kb * 1024; }
};

/// Outcome of one logical request (possibly several attempts).
struct Reply {
  bool ok = false;          // got a ReplyOk frame with status ok
  std::string code;         // E6xx from the reply (or synthesized)
  std::string message;      // error detail
  std::string payload;      // raw reply payload JSON ("" if none arrived)
  int attempts = 0;         // connections tried
};

class Client {
 public:
  explicit Client(ClientOptions opts = {});
  const ClientOptions& options() const { return opts_; }
  const std::string& socket_path() const { return path_; }

  Reply run(const RunRequest& req);
  Reply stats();
  Reply ping();
  /// Metrics registry snapshot; payload is Prometheus text, not JSON.
  Reply metrics();

 private:
  Reply request(Verb verb, const std::string& payload, bool retry_shed);
  ClientOptions opts_;
  std::string path_;
};

}  // namespace dace::serve
