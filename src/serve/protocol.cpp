#include "serve/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include "codegen/artifact_cache.hpp"  // fnv1a
#include "common/diag.hpp"
#include "common/obs.hpp"

namespace dace::serve {

namespace {

void put_u16(std::string& s, uint16_t v) {
  s.push_back((char)(v & 0xff));
  s.push_back((char)(v >> 8));
}
void put_u32(std::string& s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back((char)((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back((char)((v >> (8 * i)) & 0xff));
}
uint16_t get_u16(const uint8_t* p) { return (uint16_t)(p[0] | (p[1] << 8)); }
uint32_t get_u32(const uint8_t* p) {
  return (uint32_t)p[0] | ((uint32_t)p[1] << 8) | ((uint32_t)p[2] << 16) |
         ((uint32_t)p[3] << 24);
}
uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0,1) from the plan seed and the op index.
double draw(uint64_t seed, uint64_t op) {
  uint64_t h = mix64(seed ^ mix64(op ^ 0x5e12f00dd15ea5e5ULL));
  return (double)(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::Run: return "run";
    case Verb::Stats: return "stats";
    case Verb::Ping: return "ping";
    case Verb::Metrics: return "metrics";
    case Verb::ReplyOk: return "reply-ok";
    case Verb::ReplyError: return "reply-error";
  }
  return "?";
}

bool known_verb(uint16_t v) {
  switch ((Verb)v) {
    case Verb::Run:
    case Verb::Stats:
    case Verb::Ping:
    case Verb::Metrics:
    case Verb::ReplyOk:
    case Verb::ReplyError:
      return true;
  }
  return false;
}

std::string encode_frame(Verb verb, const std::string& payload) {
  std::string s;
  s.reserve(kHeaderBytes + payload.size());
  put_u32(s, kMagic);
  put_u16(s, kVersion);
  put_u16(s, (uint16_t)verb);
  put_u32(s, (uint32_t)payload.size());
  put_u32(s, 0);  // reserved
  put_u64(s, cg::cache::fnv1a(payload.data(), payload.size()));
  s += payload;
  return s;
}

namespace {

Decoded proto_error(std::string code, std::string message) {
  Decoded d;
  d.status = Decoded::Error;
  d.code = std::move(code);
  d.message = std::move(message);
  return d;
}

/// Validate a complete 24-byte header.  On success fills verb/len/sum.
Decoded check_header(const uint8_t* h, size_t max_payload, uint16_t* verb,
                     uint32_t* len, uint64_t* sum) {
  if (get_u32(h) != kMagic)
    return proto_error("E600", "bad frame magic (not a DSRV stream)");
  uint16_t ver = get_u16(h + 4);
  if (ver != kVersion)
    return proto_error("E601", "unsupported protocol version " +
                                   std::to_string(ver) + " (expected " +
                                   std::to_string(kVersion) + ")");
  *verb = get_u16(h + 6);
  *len = get_u32(h + 8);
  if ((size_t)*len > max_payload)
    return proto_error("E602", "oversized frame: " + std::to_string(*len) +
                                   " bytes exceeds the " +
                                   std::to_string(max_payload) + " byte cap");
  if (!known_verb(*verb))
    return proto_error("E605", "unknown verb " + std::to_string(*verb));
  *sum = get_u64(h + 16);
  Decoded d;
  d.status = Decoded::Ok;
  return d;
}

Decoded finish_frame(uint16_t verb, uint64_t sum, std::string payload) {
  if (cg::cache::fnv1a(payload.data(), payload.size()) != sum)
    return proto_error("E604", "payload checksum mismatch");
  Decoded d;
  d.status = Decoded::Ok;
  d.frame.verb = (Verb)verb;
  d.frame.payload = std::move(payload);
  return d;
}

}  // namespace

Decoded decode_frame(const std::string& bytes, size_t max_payload) {
  if (bytes.empty()) {
    Decoded d;
    d.status = Decoded::Eof;
    return d;
  }
  if (bytes.size() < kHeaderBytes)
    return proto_error("E603", "truncated frame: " +
                                   std::to_string(bytes.size()) +
                                   " header bytes of 24");
  const uint8_t* h = (const uint8_t*)bytes.data();
  uint16_t verb;
  uint32_t len;
  uint64_t sum;
  Decoded d = check_header(h, max_payload, &verb, &len, &sum);
  if (d.status != Decoded::Ok) return d;
  if (bytes.size() < kHeaderBytes + len)
    return proto_error(
        "E603", "truncated frame: payload has " +
                    std::to_string(bytes.size() - kHeaderBytes) + " of " +
                    std::to_string(len) + " bytes");
  return finish_frame(verb, sum, bytes.substr(kHeaderBytes, len));
}

namespace {

/// Read exactly n bytes with a per-call poll deadline.  Returns bytes
/// read; short count means EOF (or error/timeout, via *timed_out/errno).
size_t read_exact(int fd, uint8_t* buf, size_t n, int timeout_ms,
                  bool* timed_out) {
  *timed_out = false;
  size_t off = 0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms
                                                           : 3600 * 1000);
  while (off < n) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    if (left <= 0) {
      *timed_out = true;
      return off;
    }
    struct pollfd p = {fd, POLLIN, 0};
    int pr = ::poll(&p, 1, (int)left);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return off;
    }
    if (pr == 0) {
      *timed_out = true;
      return off;
    }
    ssize_t r = ::read(fd, buf + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return off;
    }
    if (r == 0) return off;  // peer closed
    off += (size_t)r;
  }
  return off;
}

}  // namespace

Decoded read_frame(int fd, int io_timeout_ms, size_t max_payload) {
  uint8_t hdr[kHeaderBytes];
  bool timed_out = false;
  size_t got = read_exact(fd, hdr, kHeaderBytes, io_timeout_ms, &timed_out);
  if (got == 0 && !timed_out) {
    Decoded d;
    d.status = Decoded::Eof;
    return d;
  }
  if (got < kHeaderBytes)
    return proto_error("E603", timed_out
                                   ? "truncated frame: header stalled "
                                     "(read timeout)"
                                   : "truncated frame: peer closed "
                                     "mid-header");
  uint16_t verb;
  uint32_t len;
  uint64_t sum;
  Decoded d = check_header(hdr, max_payload, &verb, &len, &sum);
  if (d.status != Decoded::Ok) return d;
  std::string payload(len, '\0');
  if (len > 0) {
    got = read_exact(fd, (uint8_t*)payload.data(), len, io_timeout_ms,
                     &timed_out);
    if (got < len)
      return proto_error("E603", timed_out
                                     ? "truncated frame: payload stalled "
                                       "(read timeout)"
                                     : "truncated frame: peer closed "
                                       "mid-payload");
  }
  return finish_frame(verb, sum, std::move(payload));
}

namespace {

bool write_all(int fd, const char* data, size_t n, std::string* why) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that disconnected mid-reply must surface as
    // EPIPE here, not as a process-killing SIGPIPE (chaos plans close
    // sockets at arbitrary points).
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (why) *why = std::string("write failed: ") + std::strerror(errno);
      return false;
    }
    off += (size_t)w;
  }
  return true;
}

}  // namespace

bool write_frame(int fd, Verb verb, const std::string& payload,
                 std::string* why) {
  std::string bytes = encode_frame(verb, payload);
  return write_all(fd, bytes.data(), bytes.size(), why);
}

// ---------------------------------------------------------------------------
// Run requests / replies
// ---------------------------------------------------------------------------

std::string format_run_request(const RunRequest& r) {
  std::ostringstream os;
  if (!r.id.empty()) os << "id=" << r.id << "\n";
  if (!r.function.empty()) os << "function=" << r.function << "\n";
  if (r.deadline_ms > 0) os << "deadline_ms=" << r.deadline_ms << "\n";
  if (r.weight != 1) os << "weight=" << r.weight << "\n";
  for (const auto& [k, v] : r.symbols) os << "sym." << k << "=" << v << "\n";
  os << "--\n" << r.source;
  return os.str();
}

bool parse_run_request(const std::string& payload, RunRequest* out,
                       std::string* why) {
  *out = RunRequest();
  size_t pos = 0;
  bool saw_sep = false;
  while (pos <= payload.size()) {
    size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) break;
    std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    if (line == "--") {
      saw_sep = true;
      break;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      *why = "malformed header line '" + line + "' (expected key=value)";
      return false;
    }
    std::string key = line.substr(0, eq);
    std::string val = line.substr(eq + 1);
    auto as_int = [&](int64_t* dst) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(val.c_str(), &end, 10);
      if (errno != 0 || !end || *end != '\0') {
        *why = "header '" + key + "' has non-integer value '" + val + "'";
        return false;
      }
      *dst = v;
      return true;
    };
    if (key == "id") {
      out->id = val;
    } else if (key == "function") {
      out->function = val;
    } else if (key == "deadline_ms") {
      if (!as_int(&out->deadline_ms)) return false;
    } else if (key == "weight") {
      int64_t w = 1;
      if (!as_int(&w)) return false;
      out->weight = (int)std::min<int64_t>(std::max<int64_t>(w, 1), 100);
    } else if (key.rfind("sym.", 0) == 0) {
      std::string name = key.substr(4);
      if (name.empty()) {
        *why = "empty symbol name in header '" + key + "'";
        return false;
      }
      int64_t v = 0;
      if (!as_int(&v)) return false;
      out->symbols[name] = v;
    } else {
      *why = "unknown header '" + key + "'";
      return false;
    }
  }
  if (!saw_sep) {
    *why = "missing '--' separator between headers and source";
    return false;
  }
  out->source = payload.substr(pos);
  if (out->source.empty()) {
    *why = "empty program source";
    return false;
  }
  return true;
}

uint64_t request_key(const RunRequest& r) {
  uint64_t h = cg::cache::fnv1a(r.source.data(), r.source.size());
  h = cg::cache::fnv1a(r.function.data(), r.function.size(), h);
  for (const auto& [k, v] : r.symbols) {  // std::map: canonical order
    h = cg::cache::fnv1a(k.data(), k.size(), h);
    h = cg::cache::fnv1a(&v, sizeof(v), h);
  }
  return h;
}

std::string error_payload(const std::string& code, const std::string& message,
                          int64_t retry_after_ms) {
  std::ostringstream os;
  os << "{\"status\":\"error\",\"code\":\"" << diag::json_escape(code)
     << "\",\"message\":\"" << diag::json_escape(message) << "\"";
  if (retry_after_ms >= 0) os << ",\"retry_after_ms\":" << retry_after_ms;
  os << "}";
  return os.str();
}

std::string json_find_string(const std::string& payload,
                             const std::string& key) {
  std::string pat = "\"" + key + "\":\"";
  size_t p = payload.find(pat);
  if (p == std::string::npos) return "";
  p += pat.size();
  std::string out;
  while (p < payload.size() && payload[p] != '"') {
    if (payload[p] == '\\' && p + 1 < payload.size()) ++p;
    out += payload[p++];
  }
  return out;
}

int64_t json_find_int(const std::string& payload, const std::string& key,
                      int64_t dflt) {
  std::string pat = "\"" + key + "\":";
  size_t p = payload.find(pat);
  if (p == std::string::npos) return dflt;
  p += pat.size();
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(payload.c_str() + p, &end, 10);
  if (errno != 0 || end == payload.c_str() + p) return dflt;
  return v;
}

std::string extract_outputs(const std::string& payload) {
  std::string pat = "\"outputs\":{";
  size_t p = payload.find(pat);
  if (p == std::string::npos) return "";
  size_t start = p + pat.size() - 1;  // at '{'
  int depth = 0;
  for (size_t i = start; i < payload.size(); ++i) {
    if (payload[i] == '{') ++depth;
    if (payload[i] == '}') {
      if (--depth == 0) return payload.substr(start, i - start + 1);
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

const char* serve_fault_name(ServeFault f) {
  switch (f) {
    case ServeFault::None: return "none";
    case ServeFault::Disconnect: return "disconnect";
    case ServeFault::SlowLoris: return "slow-loris";
    case ServeFault::Corrupt: return "corrupt";
    case ServeFault::CrashJob: return "crash-job";
    case ServeFault::Wedge: return "wedge";
    case ServeFault::DeadlineStorm: return "deadline-storm";
  }
  return "?";
}

bool ServeFaultPlan::active() const {
  return disconnect_prob > 0 || slow_prob > 0 || corrupt_prob > 0 ||
         crash_prob > 0 || wedge_prob > 0 || storm_prob > 0;
}

ServeFault ServeFaultPlan::decide(uint64_t op_index) const {
  if (!active()) return ServeFault::None;
  double u = draw(seed, op_index);
  double acc = 0;
  struct {
    double p;
    ServeFault f;
  } kinds[] = {
      {disconnect_prob, ServeFault::Disconnect},
      {slow_prob, ServeFault::SlowLoris},
      {corrupt_prob, ServeFault::Corrupt},
      {crash_prob, ServeFault::CrashJob},
      {wedge_prob, ServeFault::Wedge},
      {storm_prob, ServeFault::DeadlineStorm},
  };
  for (const auto& k : kinds) {
    acc += k.p;
    if (u < acc) return k.f;
  }
  return ServeFault::None;
}

std::string ServeFaultPlan::to_string() const {
  if (!active()) return "";
  std::ostringstream os;
  os << "seed=" << seed;
  auto emit = [&](const char* k, double p) {
    if (p > 0) {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", p);
      os << "," << k << "=" << buf;
    }
  };
  emit("disconnect", disconnect_prob);
  emit("slow", slow_prob);
  emit("corrupt", corrupt_prob);
  emit("crash", crash_prob);
  emit("wedge", wedge_prob);
  emit("storm", storm_prob);
  return os.str();
}

ServeFaultPlan ServeFaultPlan::parse(const std::string& spec) {
  ServeFaultPlan p;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string kv = spec.substr(pos, comma - pos);
    pos = comma + 1;
    size_t eq = kv.find('=');
    if (eq == std::string::npos) continue;
    std::string key = kv.substr(0, eq);
    double val = std::atof(kv.c_str() + eq + 1);
    if (key == "seed") p.seed = (uint64_t)std::atoll(kv.c_str() + eq + 1);
    else if (key == "disconnect") p.disconnect_prob = val;
    else if (key == "slow") p.slow_prob = val;
    else if (key == "corrupt") p.corrupt_prob = val;
    else if (key == "crash") p.crash_prob = val;
    else if (key == "wedge") p.wedge_prob = val;
    else if (key == "storm") p.storm_prob = val;
  }
  return p;
}

ServeFaultPlan ServeFaultPlan::from_env() {
  ServeFaultPlan p;
  if (const char* spec = std::getenv("DACE_SERVE_FAULTS")) {
    p = parse(spec);
  }
  if (const char* seed = std::getenv("DACE_SERVE_FAULT_SEED")) {
    if (*seed) p.seed = (uint64_t)std::atoll(seed);
  }
  return p;
}

namespace {
std::mutex g_fault_mu;
ServeFaultPlan g_fault_plan;
std::atomic<uint64_t> g_fault_op{0};
std::atomic<uint64_t> g_faults_injected{0};
}  // namespace

void set_fault_plan(const ServeFaultPlan& plan) {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  g_fault_plan = plan;
}

const ServeFaultPlan& fault_plan() {
  static ServeFaultPlan* snap = new ServeFaultPlan();
  std::lock_guard<std::mutex> lk(g_fault_mu);
  *snap = g_fault_plan;
  return *snap;
}

ServeFault next_fault(const ServeFaultPlan& plan) {
  ServeFault f = plan.decide(g_fault_op.fetch_add(1,
                                                  std::memory_order_relaxed));
  if (f != ServeFault::None) {
    g_faults_injected.fetch_add(1, std::memory_order_relaxed);
    OBS_INSTANT("serve", "fault",
                std::string("{\"kind\":\"") + serve_fault_name(f) + "\"}");
  }
  return f;
}

uint64_t faults_injected() {
  return g_faults_injected.load(std::memory_order_relaxed);
}

bool write_frame_faulty(int fd, Verb verb, const std::string& payload,
                        const ServeFaultPlan& plan, std::string* why) {
  if (!plan.active()) return write_frame(fd, verb, payload, why);
  ServeFault f = next_fault(plan);
  std::string bytes = encode_frame(verb, payload);
  switch (f) {
    case ServeFault::Disconnect: {
      // Write a torn prefix and close the connection under the server.
      size_t n = bytes.size() / 2;
      write_all(fd, bytes.data(), n, why);
      ::shutdown(fd, SHUT_WR);
      if (why) *why = "injected mid-frame disconnect";
      return false;
    }
    case ServeFault::SlowLoris: {
      // Dribble the frame in small batches with real delays; a server
      // read timeout shorter than the total write time trips E603.
      const size_t batch = 16;
      for (size_t off = 0; off < bytes.size(); off += batch) {
        size_t n = std::min(batch, bytes.size() - off);
        if (!write_all(fd, bytes.data() + off, n, why)) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return true;
    }
    case ServeFault::Corrupt: {
      // Flip a payload byte after the checksum was computed: the frame
      // arrives complete but fails verification (E604).
      if (bytes.size() > kHeaderBytes)
        bytes[kHeaderBytes + (bytes.size() - kHeaderBytes) / 2] ^= 0x20;
      return write_all(fd, bytes.data(), bytes.size(), why);
    }
    default:
      return write_all(fd, bytes.data(), bytes.size(), why);
  }
}

}  // namespace dace::serve
