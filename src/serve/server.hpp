// sdfg-serve daemon core (ROADMAP item 2: the long-lived half of the
// compile-and-serve architecture, on top of the PR-8 artifact cache).
//
// One Server owns a unix-domain listening socket and four thread roles:
//
//   accept loop   -- accepts connections, spawns one reader per conn
//   readers       -- decode frames (protocol.hpp), answer Ping/Stats
//                    inline, run admission control for Run jobs
//   worker pool   -- drain the weighted fair queue; each job runs in an
//                    *abandonable* detached thread (the xf::Pipeline
//                    pass-timeout pattern) so a wedged executor can be
//                    abandoned without killing the daemon
//   watchdog      -- fires cooperative cancellation at each job's
//                    deadline and abandons jobs that ignore it past the
//                    wedge grace period
//
// Robustness contract (docs/SERVE.md):
//   - admission control: the queue is bounded; past the bound, new Run
//     frames are shed immediately with E607 + retry_after_ms
//   - weighted fair queueing: start-time fair queuing across client
//     connections so one chatty client cannot starve the rest
//   - in-flight dedup: concurrent requests with one request_key share a
//     single compile-and-run; subscribers attach to the winner, and a
//     failed compile fans the same E611 to every waiter and lands in
//     the persisted negative cache
//   - deadlines: cooperative cancel via ExecutorOptions::cancel_check;
//     jobs that ignore it are abandoned (E608) after the wedge grace
//   - graceful drain: stop accepting, E610 to new work, finish or
//     deadline-out in-flight jobs, flush obs:: counters
//   - crash-only restart: a stale socket file from a dead daemon is
//     probed (connect) and recovered (unlink); a live daemon refuses to
//     be shadowed; a symlinked socket path refuses to start at all
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace dace::serve {

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

struct ServeConfig {
  std::string socket_path;       // "" = default_socket_path()
  int workers = 4;               // job worker threads
  int queue_max = 64;            // admission bound (jobs queued, not running)
  int64_t deadline_ms = 30000;   // default per-job deadline
  int64_t wedge_grace_ms = 500;  // cancel-to-abandon grace
  int io_timeout_ms = 2000;      // per-read poll deadline (slow-loris bound)
  int max_frame_kb = 4096;       // payload cap (E602)
  int64_t drain_timeout_ms = 10000;  // drain() wait bound
  ServeFaultPlan faults;         // server-side job faults (chaos tests)

  size_t max_payload() const { return (size_t)max_frame_kb * 1024; }

  /// DACE_SERVE_SOCKET/_WORKERS/_QUEUE_MAX/_DEADLINE_MS/_WEDGE_GRACE_MS/
  /// _IO_TIMEOUT_MS/_MAX_FRAME_KB/_DRAIN_TIMEOUT_MS/_FAULTS/_FAULT_SEED.
  static ServeConfig from_env();
};

/// Default socket path: $XDG_RUNTIME_DIR/dacepp-serve-UID.sock, else
/// ~/.cache/dacepp/serve-UID.sock, else /tmp/dacepp-serve-UID.sock
/// (same XDG preference order as the artifact cache root).
std::string default_socket_path();

// ---------------------------------------------------------------------------
// Weighted fair queue (start-time fair queuing across connections)
// ---------------------------------------------------------------------------

/// Bounded weighted fair queue.  Each item belongs to a flow (one client
/// connection); an item's virtual finish time is
///   vft = max(vclock, flow's last vft) + 1/weight
/// and pop() always takes the smallest vft, so a flow with weight w gets
/// a w-proportional share of dequeues while light flows never wait
/// behind a burst from a heavy one.  Not thread-safe; the Server guards
/// it with its queue mutex.
template <typename T>
class FairQueue {
 public:
  explicit FairQueue(size_t bound) : bound_(bound) {}

  bool full() const { return items_.size() >= bound_; }
  size_t size() const { return items_.size(); }

  /// False when the queue is at its admission bound (caller sheds).
  bool push(T item, uint64_t flow, int weight) {
    if (full()) return false;
    double last = 0;
    auto it = flow_vft_.find(flow);
    if (it != flow_vft_.end()) last = it->second;
    double vft = std::max(vclock_, last) + 1.0 / (double)std::max(weight, 1);
    flow_vft_[flow] = vft;
    items_.push_back(Entry{vft, seq_++, std::move(item)});
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    size_t best = 0;
    for (size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].vft < items_[best].vft ||
          (items_[i].vft == items_[best].vft &&
           items_[i].seq < items_[best].seq))
        best = i;
    }
    vclock_ = std::max(vclock_, items_[best].vft);
    T out = std::move(items_[best].item);
    items_.erase(items_.begin() + (long)best);
    return out;
  }

  /// Drop a finished flow's bookkeeping (connection closed).
  void forget_flow(uint64_t flow) { flow_vft_.erase(flow); }

 private:
  struct Entry {
    double vft;
    uint64_t seq;  // FIFO tiebreak at equal vft
    T item;
  };
  size_t bound_;
  uint64_t seq_ = 0;
  double vclock_ = 0;
  std::vector<Entry> items_;
  std::map<uint64_t, double> flow_vft_;
};

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Monotonic serve counters (the Stats verb and obs:: "serve" instants
/// mirror these; sdfg-prof aggregates the trace side).
struct ServeStats {
  uint64_t connections = 0;
  uint64_t accepted = 0;          // jobs admitted to the queue
  uint64_t shed = 0;              // E607 overload rejections
  uint64_t deduped = 0;           // requests attached to an in-flight twin
  uint64_t completed = 0;         // ok replies sent
  uint64_t compile_errors = 0;    // E611 replies
  uint64_t deadline_exceeded = 0; // E608 cancelled jobs
  uint64_t wedged = 0;            // E608 abandoned (ignored cancel)
  uint64_t crashed = 0;           // E609 executor-thread exceptions
  uint64_t protocol_errors = 0;   // E600..E606 replies
  uint64_t drained = 0;           // E610 replies during drain
};

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

class Server {
 public:
  explicit Server(ServeConfig cfg);
  ~Server();

  /// Bind + listen + spawn threads.  False + `why` on failure (symlinked
  /// socket path, live daemon already bound, bind/listen errors).
  /// Recovers a stale socket file left by a crashed daemon.
  bool start(std::string* why);

  /// Graceful drain: stop accepting, answer new frames with E610, wait
  /// (bounded by drain_timeout_ms) for in-flight jobs, flush obs, close.
  /// True when no jobs were orphaned.
  bool drain();

  /// Hard stop (tests): like drain but without the grace semantics.
  void stop();

  bool running() const { return running_.load(); }
  const ServeConfig& config() const { return cfg_; }
  const std::string& socket_path() const { return sock_path_; }

  ServeStats stats() const;
  /// The Stats verb payload: counters + queue depth + queue-wait
  /// percentiles (p50/p90/p99 ms) + faults_injected, as flat JSON.
  std::string stats_json() const;

 private:
  struct Job;
  struct Inflight;
  struct Conn;

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  void watchdog_loop();
  /// Frame dispatch; returns false when the connection must close.
  bool handle_frame(const std::shared_ptr<Conn>& conn, const Frame& f);
  void run_job(const std::shared_ptr<Job>& job);
  /// Send a job's reply (ok or error) to its own and all attached
  /// subscriber connections.
  void finish_job(const std::shared_ptr<Job>& job);
  void reply_error(const std::shared_ptr<Conn>& conn, const std::string& id,
                   const std::string& code, const std::string& message,
                   int64_t retry_after_ms = -1);
  void record_queue_wait(int64_t ms);

  ServeConfig cfg_;
  std::string sock_path_;
  int listen_fd_ = -1;
  int lock_fd_ = -1;
  std::string lock_path_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  // Separate from running_: drain() retires the listener while the rest
  // of the daemon keeps serving, and the accept loop must exit even when
  // it was between poll() calls as the listener fd was closed (polling
  // the then -1 fd would otherwise spin on timeouts forever).
  std::atomic<bool> accepting_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> readers_;  // one per accepted connection
  std::thread watchdog_;

  mutable std::mutex mu_;  // queue, inflight, conns, stats, waits
  std::condition_variable queue_cv_;
  FairQueue<std::shared_ptr<Job>> queue_;
  std::map<uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::vector<std::shared_ptr<Job>> active_;  // running jobs (watchdog scan)
  std::vector<std::shared_ptr<Conn>> conns_;
  ServeStats stats_;
  std::deque<int64_t> queue_wait_ms_;  // ring of recent samples
  uint64_t next_conn_id_ = 1;
};

}  // namespace dace::serve
