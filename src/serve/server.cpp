#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "codegen/artifact_cache.hpp"
#include "common/common.hpp"
#include "common/diag.hpp"
#include "common/metrics.hpp"
#include "common/obs.hpp"
#include "frontend/lowering.hpp"
#include "runtime/executor.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace::serve {

namespace {

int64_t env_int(const char* name, int64_t dflt) {
  const char* v = std::getenv(name);
  if (!v || !*v) return dflt;
  return std::atoll(v);
}

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string hex16(uint64_t v) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

std::string default_socket_path() {
  std::string fname = "dacepp-serve-" + std::to_string((long)getuid()) +
                      ".sock";
  if (const char* xdg = std::getenv("XDG_RUNTIME_DIR")) {
    if (*xdg) return std::string(xdg) + "/" + fname;
  }
  if (const char* home = std::getenv("HOME")) {
    if (*home) {
      std::string dir = std::string(home) + "/.cache";
      ::mkdir(dir.c_str(), 0755);
      dir += "/dacepp";
      ::mkdir(dir.c_str(), 0755);
      struct stat st;
      if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        return dir + "/serve-" + std::to_string((long)getuid()) + ".sock";
    }
  }
  return "/tmp/" + fname;
}

ServeConfig ServeConfig::from_env() {
  ServeConfig c;
  if (const char* s = std::getenv("DACE_SERVE_SOCKET"))
    if (*s) c.socket_path = s;
  c.workers = (int)env_int("DACE_SERVE_WORKERS", c.workers);
  c.workers = std::max(1, std::min(c.workers, 64));
  c.queue_max = (int)env_int("DACE_SERVE_QUEUE_MAX", c.queue_max);
  c.queue_max = std::max(1, c.queue_max);
  c.deadline_ms = env_int("DACE_SERVE_DEADLINE_MS", c.deadline_ms);
  c.wedge_grace_ms = env_int("DACE_SERVE_WEDGE_GRACE_MS", c.wedge_grace_ms);
  c.io_timeout_ms = (int)env_int("DACE_SERVE_IO_TIMEOUT_MS", c.io_timeout_ms);
  c.max_frame_kb = (int)env_int("DACE_SERVE_MAX_FRAME_KB", c.max_frame_kb);
  c.drain_timeout_ms =
      env_int("DACE_SERVE_DRAIN_TIMEOUT_MS", c.drain_timeout_ms);
  c.faults = ServeFaultPlan::from_env();
  return c;
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::mutex write_mu;       // replies race: reader vs worker threads
  std::atomic<bool> open{true};
};

struct Server::Job {
  RunRequest req;
  uint64_t key = 0;
  std::shared_ptr<Conn> conn;
  int64_t enqueue_ms = 0;
  std::atomic<int64_t> deadline_at_ms{0};  // absolute steady ms
  std::atomic<bool> cancel{false};
  std::atomic<bool> wedged{false};
  std::atomic<bool> running{false};
  ServeFault fault = ServeFault::None;  // server-side job fault for this job

  // Result, filled by run_job.
  bool ok = false;
  std::string code;     // E6xx when !ok
  std::string message;  // detail when !ok
  std::string body;     // ok-reply body sans id ("function":...,"outputs":...)
};

struct Server::Inflight {
  std::shared_ptr<Job> winner;
  // Requests that attached to the winner: reply destination + their id.
  std::vector<std::pair<std::shared_ptr<Conn>, std::string>> subscribers;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServeConfig cfg)
    : cfg_(std::move(cfg)), queue_((size_t)cfg_.queue_max) {}

Server::~Server() { stop(); }

bool Server::start(std::string* why) {
  sock_path_ =
      cfg_.socket_path.empty() ? default_socket_path() : cfg_.socket_path;

  // Symlinked socket paths are refused outright: binding through one
  // would let another user redirect the daemon's endpoint.
  struct stat st;
  if (::lstat(sock_path_.c_str(), &st) == 0 && S_ISLNK(st.st_mode)) {
    if (why) *why = "socket path is a symlink: " + sock_path_;
    return false;
  }

  // Startup lock: serializes crash-recovery probing between two daemons
  // starting at once.  flock dies with its owner, so a crashed daemon
  // never wedges the path.
  lock_path_ = sock_path_ + ".lock";
  lock_fd_ = ::open(lock_path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0600);
  if (lock_fd_ >= 0 && ::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    if (why) *why = "another daemon holds the lock: " + lock_path_;
    ::close(lock_fd_);
    lock_fd_ = -1;
    return false;
  }

  // Crash-only restart recovery: a leftover socket file is probed with a
  // connect.  A live daemon answers (we refuse to shadow it); a stale
  // file from a crashed daemon refuses the connection and is unlinked.
  if (::lstat(sock_path_.c_str(), &st) == 0) {
    int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    struct sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, sock_path_.c_str(), sizeof(sa.sun_path) - 1);
    bool live =
        probe >= 0 && ::connect(probe, (struct sockaddr*)&sa, sizeof(sa)) == 0;
    if (probe >= 0) ::close(probe);
    if (live) {
      if (why) *why = "a live daemon is already bound to " + sock_path_;
      ::close(lock_fd_);
      lock_fd_ = -1;
      return false;
    }
    ::unlink(sock_path_.c_str());
    OBS_INSTANT("serve", "stale-socket-recovered",
                "{\"path\":\"" + diag::json_escape(sock_path_) + "\"}");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (why) *why = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  struct sockaddr_un sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  if (sock_path_.size() >= sizeof(sa.sun_path)) {
    if (why) *why = "socket path too long: " + sock_path_;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  std::strncpy(sa.sun_path, sock_path_.c_str(), sizeof(sa.sun_path) - 1);
  if (::bind(listen_fd_, (struct sockaddr*)&sa, sizeof(sa)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (why)
      *why = "bind/listen on " + sock_path_ + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true);
  draining_.store(false);
  accepting_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
  OBS_INSTANT("serve", "start",
              "{\"socket\":\"" + diag::json_escape(sock_path_) +
                  "\",\"workers\":" + std::to_string(cfg_.workers) + "}");
  return true;
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Unblock the accept loop, then everything downstream.
  accepting_.store(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& c : conns_) {
      c->open.store(false);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  readers_.clear();
  {
    // Readers joined above normally close their own fd; this sweeps any
    // connection whose reader never observed the shutdown.
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
      c->fd = -1;
    }
    conns_.clear();
  }
  ::unlink(sock_path_.c_str());
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock
    lock_fd_ = -1;
    ::unlink(lock_path_.c_str());
  }
}

bool Server::drain() {
  if (!running_.load()) return true;
  draining_.store(true);
  // Stop accepting new connections; existing readers keep answering
  // (Run gets E610 from here on).
  accepting_.store(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Wait, bounded, for the queue and every in-flight job to finish;
  // deadlines and the watchdog guarantee progress.
  int64_t give_up = now_ms() + cfg_.drain_timeout_ms;
  size_t orphaned = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      orphaned = queue_.size() + active_.size() + inflight_.size();
    }
    if (orphaned == 0 || now_ms() >= give_up) break;
    queue_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Flush observability before teardown: the final counters instant is
  // the drain record sdfg-prof aggregates.
  OBS_INSTANT("serve", "drain", stats_json());
  stop();
  return orphaned == 0;
}

// ---------------------------------------------------------------------------
// Accept / read
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  while (running_.load() && accepting_.load()) {
    // Snapshot the fd: drain()/stop() close it and write -1 concurrently,
    // and poll(-1) would "succeed" by timing out, spinning this loop.
    int lfd = listen_fd_;
    if (lfd < 0) return;
    struct pollfd p = {lfd, POLLIN, 0};
    int pr = ::poll(&p, 1, 100);
    if (!running_.load() || !accepting_.load()) return;
    if (pr <= 0) continue;
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;  // listener closed (drain/stop)
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lk(mu_);
      conn->id = next_conn_id_++;
      ++stats_.connections;
      conns_.push_back(conn);
      readers_.emplace_back([this, conn] { reader_loop(conn); });
    }
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  while (running_.load() && conn->open.load()) {
    // Idle-wait without a deadline: io_timeout only bounds *mid-frame*
    // stalls (slow loris), not the gap between requests.
    struct pollfd p = {conn->fd, POLLIN, 0};
    int pr = ::poll(&p, 1, 100);
    if (!running_.load() || !conn->open.load()) break;
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    Decoded d = read_frame(conn->fd, cfg_.io_timeout_ms, cfg_.max_payload());
    if (d.status == Decoded::Eof) break;
    if (d.status == Decoded::Error) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.protocol_errors;
        METRIC_INC("dacepp_serve_protocol_errors_total");
      }
      OBS_INSTANT("serve", "protocol-error",
                  "{\"code\":\"" + d.code + "\"}");
      reply_error(conn, "", d.code, d.message);
      break;  // a torn byte stream cannot be resynchronized
    }
    if (!handle_frame(conn, d.frame)) break;
  }
  conn->open.store(false);
  {
    // Close under the write lock so a worker mid-reply never races a
    // reused descriptor; writers check fd under the same lock.
    std::lock_guard<std::mutex> wl(conn->write_mu);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  std::lock_guard<std::mutex> lk(mu_);
  queue_.forget_flow(conn->id);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
}

bool Server::handle_frame(const std::shared_ptr<Conn>& conn, const Frame& f) {
  switch (f.verb) {
    case Verb::Ping: {
      std::string why;
      std::lock_guard<std::mutex> wl(conn->write_mu);
      return conn->fd >= 0 &&
             write_frame(conn->fd, Verb::ReplyOk,
                         "{\"status\":\"ok\",\"pong\":1}", &why);
    }
    case Verb::Stats: {
      std::string payload = stats_json();
      std::string why;
      std::lock_guard<std::mutex> wl(conn->write_mu);
      return conn->fd >= 0 &&
             write_frame(conn->fd, Verb::ReplyOk, payload, &why);
    }
    case Verb::Metrics: {
      // Live registry snapshot, Prometheus text format.  Answered inline
      // like Stats: exposition never queues behind Run jobs.
      std::string payload = metrics::expose_text();
      std::string why;
      std::lock_guard<std::mutex> wl(conn->write_mu);
      return conn->fd >= 0 &&
             write_frame(conn->fd, Verb::ReplyOk, payload, &why);
    }
    case Verb::Run:
      break;
    default:
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.protocol_errors;
        METRIC_INC("dacepp_serve_protocol_errors_total");
      }
      reply_error(conn, "", "E605",
                  std::string("verb '") + verb_name(f.verb) +
                      "' is not a request");
      return false;
  }

  RunRequest req;
  std::string why;
  if (!parse_run_request(f.payload, &req, &why)) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.protocol_errors;
    }
    reply_error(conn, "", "E606", "malformed run request: " + why);
    return true;  // body errors are per-request; the stream is intact
  }

  if (draining_.load()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.drained;
    }
    reply_error(conn, req.id, "E610", "daemon is draining; retry elsewhere");
    return true;
  }

  auto job = std::make_shared<Job>();
  job->req = std::move(req);
  job->key = request_key(job->req);
  job->conn = conn;
  job->enqueue_ms = now_ms();
  // One fault draw per job: the server-side kinds run the executor
  // chaos; a DeadlineStorm collapses the job's deadline to ~nothing.
  job->fault = next_fault(cfg_.faults);
  if (job->fault == ServeFault::DeadlineStorm) job->req.deadline_ms = 1;

  std::string shed_why;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = inflight_.find(job->key);
    if (it != inflight_.end()) {
      // In-flight dedup: attach to the winner; one compile serves all.
      ++stats_.deduped;
      METRIC_INC("dacepp_serve_deduped_total");
      it->second->subscribers.emplace_back(conn, job->req.id);
      OBS_INSTANT("serve", "dedup",
                  "{\"key\":\"" + hex16(job->key) + "\"}");
      return true;
    }
    if (!queue_.push(job, conn->id, job->req.weight)) {
      ++stats_.shed;
      METRIC_INC("dacepp_serve_shed_total");
      shed_why = "queue full (" + std::to_string(cfg_.queue_max) + " jobs)";
    } else {
      ++stats_.accepted;
      METRIC_INC("dacepp_serve_accepted_total");
      auto inf = std::make_shared<Inflight>();
      inf->winner = job;
      inflight_[job->key] = inf;
      depth = queue_.size();
    }
  }
  if (!shed_why.empty()) {
    // Shed *now*, from the reader thread: an overloaded daemon answers
    // fastest exactly when it is busiest.
    OBS_INSTANT("serve", "shed", "{\"key\":\"" + hex16(job->key) + "\"}");
    reply_error(conn, job->req.id, "E607", "overloaded: " + shed_why,
                /*retry_after_ms=*/25 + 5 * (int64_t)cfg_.queue_max);
    return true;
  }
  OBS_INSTANT("serve", "accepted", "{\"key\":\"" + hex16(job->key) + "\"}");
  OBS_COUNTER("serve", "queue-depth", (double)depth);
  METRIC_GAUGE_SET("dacepp_serve_queue_depth", depth);
  queue_cv_.notify_one();
  return true;
}

// ---------------------------------------------------------------------------
// Workers / jobs
// ---------------------------------------------------------------------------

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] { return !running_.load() || queue_.size() > 0; });
      if (!running_.load()) return;  // drain() empties the queue first
      auto popped = queue_.pop();
      if (!popped) continue;
      job = *popped;
      active_.push_back(job);
    }
    int64_t wait = now_ms() - job->enqueue_ms;
    record_queue_wait(wait);
    obs::complete("serve", "queue-wait",
                  obs::now_ns() - wait * 1000000, wait * 1000000,
                  "{\"key\":\"" + hex16(job->key) + "\"}");

    int64_t deadline =
        job->req.deadline_ms > 0 ? job->req.deadline_ms : cfg_.deadline_ms;
    job->deadline_at_ms.store(now_ms() + deadline);
    job->running.store(true);
    run_job(job);
    job->running.store(false);

    {
      std::lock_guard<std::mutex> lk(mu_);
      active_.erase(std::remove(active_.begin(), active_.end(), job),
                    active_.end());
    }
    finish_job(job);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  // The job body runs in an abandonable detached thread (the
  // xf::Pipeline pass-timeout pattern): it owns shared state, so a
  // wedged executor is abandoned -- it keeps running against its own
  // references, never against freed memory -- and the daemon moves on.
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string code, message, body;
  };
  auto sh = std::make_shared<Shared>();
  ServeConfig cfg = cfg_;
  int64_t t0 = obs::now_ns();

  std::thread([sh, job, cfg] {
    struct JobError {
      std::string code, message;
    };
    bool ok = false;
    std::string code, message, body;
    try {
      if (job->fault == ServeFault::CrashJob)
        throw dace::Error("injected executor-thread crash");
      if (job->fault == ServeFault::Wedge) {
        // Simulated wedged executor: ignore cancellation until well past
        // the wedge grace.  The watchdog abandons us; nobody reads what
        // we write below.
        int64_t until = now_ms() + cfg.deadline_ms + 4 * cfg.wedge_grace_ms;
        while (now_ms() < until && !job->wedged.load())
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        throw dace::Error("cancelled: wedged job released");
      }

      auto& cache = cg::cache::ArtifactCache::instance();
      if (cache.negative_lookup(job->key, "serve")) {
        throw JobError{"E611",
                       "program previously failed to compile "
                       "(persistent negative cache)"};
      }

      int64_t c0 = obs::now_ns();
      diag::DiagSink sink;
      auto sdfg =
          fe::compile_to_sdfg(job->req.source, sink, job->req.function);
      if (!sdfg) {
        std::string detail = sink.render();
        cache.negative_store(job->key, "serve", detail);
        throw JobError{"E611", "compile failed:\n" + detail};
      }
      xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
      double compile_ms = (obs::now_ns() - c0) / 1e6;

      sym::SymbolMap syms;
      for (const auto& [k, v] : job->req.symbols) syms[k] = v;

      // Deterministic argument synthesis: every run of the same request
      // sees identical inputs, making output checksums comparable across
      // runs and across daemons (the chaos differential oracle).
      rt::Bindings args;
      for (const auto& an : sdfg->arg_names()) {
        const auto& desc = sdfg->arrays().at(an);
        uint64_t h = cg::cache::fnv1a(an.data(), an.size());
        if (desc.is_scalar()) {
          args.emplace(an, rt::Tensor::scalar(
                               (double)(h % 97) / 7.0, desc.dtype));
        } else {
          std::vector<int64_t> shape;
          for (const auto& e : desc.shape) shape.push_back(e.eval(syms));
          rt::Tensor t(desc.dtype, shape);
          double* d = t.data();
          int64_t n = t.size();
          for (int64_t i = 0; i < n; ++i)
            d[i] = (double)((h + (uint64_t)i * 2654435761ull) % 1024) / 64.0;
          args.emplace(an, std::move(t));
        }
      }

      rt::ExecutorOptions opts;
      opts.cancel_check = [job] { return job->cancel.load(); };
      rt::Executor ex(*sdfg, opts);
      int64_t e0 = obs::now_ns();
      ex.run(args, syms);
      double exec_ms = (obs::now_ns() - e0) / 1e6;

      std::ostringstream outs;
      outs << "{";
      bool first = true;
      for (const auto& an : sdfg->arg_names()) {
        const rt::Tensor& t = args.at(an);
        uint64_t sum =
            cg::cache::fnv1a(t.data(), (size_t)t.size() * sizeof(double));
        outs << (first ? "" : ",") << "\"" << diag::json_escape(an)
             << "\":\"" << hex16(sum) << "\"";
        first = false;
      }
      outs << "}";
      std::ostringstream os;
      os << "\"function\":\"" << diag::json_escape(sdfg->name())
         << "\",\"outputs\":" << outs.str() << ",\"compile_ms\":"
         << (int64_t)compile_ms << ",\"exec_ms\":" << (int64_t)exec_ms;
      body = os.str();
      ok = true;
    } catch (const JobError& e) {
      code = e.code;
      message = e.message;
    } catch (const diag::DiagError& e) {
      code = "E611";
      message = e.what();
    } catch (const std::exception& e) {
      message = e.what() ? e.what() : "unknown error";
      code = message.rfind("cancelled", 0) == 0 ? "E608" : "E609";
    } catch (...) {
      code = "E609";
      message = "non-standard exception in job thread";
    }
    std::lock_guard<std::mutex> lk(sh->m);
    sh->done = true;
    sh->ok = ok;
    sh->code = std::move(code);
    sh->message = std::move(message);
    sh->body = std::move(body);
    sh->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lk(sh->m);
  while (!sh->done) {
    sh->cv.wait_for(lk, std::chrono::milliseconds(10));
    if (sh->done) break;
    if (job->wedged.load()) {
      // The job ignored cancellation past the grace period: abandon the
      // worker thread (it only touches its own shared state) and fail
      // the job without failing the daemon.
      job->ok = false;
      job->code = "E608";
      job->message = "job wedged: ignored cancellation past " +
                     std::to_string(cfg_.wedge_grace_ms) + " ms grace";
      obs::complete("serve", "exec", t0, obs::now_ns() - t0,
                    "{\"outcome\":\"wedged\"}");
      return;
    }
  }
  job->ok = sh->ok;
  job->code = sh->code;
  job->message = sh->message;
  job->body = sh->body;
  obs::complete("serve", "exec", t0, obs::now_ns() - t0,
                std::string("{\"outcome\":\"") +
                    (job->ok ? "ok" : job->code.c_str()) + "\"}");
}

void Server::finish_job(const std::shared_ptr<Job>& job) {
  std::vector<std::pair<std::shared_ptr<Conn>, std::string>> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = inflight_.find(job->key);
    if (it != inflight_.end()) {
      targets = std::move(it->second->subscribers);
      inflight_.erase(it);
    }
    if (job->ok) {
      ++stats_.completed;
      METRIC_INC("dacepp_serve_completed_total");
    } else if (job->code == "E611") {
      ++stats_.compile_errors;
      METRIC_INC("dacepp_serve_compile_errors_total");
    } else if (job->code == "E608") {
      if (job->wedged.load()) ++stats_.wedged;
      else ++stats_.deadline_exceeded;
      METRIC_INC("dacepp_serve_deadline_total");
    } else {
      ++stats_.crashed;
      METRIC_INC("dacepp_serve_crashed_total");
    }
  }
  targets.emplace(targets.begin(), job->conn, job->req.id);

  const char* obs_name = job->ok               ? "completed"
                         : job->code == "E611" ? "compile-error"
                         : job->code == "E608"
                             ? (job->wedged.load() ? "wedged" : "deadline")
                             : "crash";
  OBS_INSTANT("serve", obs_name,
              "{\"key\":\"" + hex16(job->key) +
                  "\",\"fanout\":" + std::to_string(targets.size()) + "}");

  for (const auto& [conn, id] : targets) {
    if (!conn->open.load()) continue;  // client went away; drop silently
    std::string payload;
    if (job->ok) {
      payload = "{\"status\":\"ok\",\"id\":\"" + diag::json_escape(id) +
                "\"," + job->body + "}";
      std::string why;
      std::lock_guard<std::mutex> wl(conn->write_mu);
      if (conn->fd < 0 ||
          !write_frame(conn->fd, Verb::ReplyOk, payload, &why))
        conn->open.store(false);
    } else {
      reply_error(conn, id, job->code, job->message);
    }
  }
}

void Server::reply_error(const std::shared_ptr<Conn>& conn,
                         const std::string& id, const std::string& code,
                         const std::string& message, int64_t retry_after_ms) {
  std::string payload = error_payload(code, message, retry_after_ms);
  if (!id.empty()) {
    // Inject the correlation id right after the opening brace.
    payload = "{\"id\":\"" + diag::json_escape(id) + "\"," + payload.substr(1);
  }
  std::string why;
  std::lock_guard<std::mutex> wl(conn->write_mu);
  if (conn->fd < 0 ||
      !write_frame(conn->fd, Verb::ReplyError, payload, &why))
    conn->open.store(false);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

void Server::watchdog_loop() {
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<std::shared_ptr<Job>> snap;
    {
      std::lock_guard<std::mutex> lk(mu_);
      snap = active_;
    }
    int64_t now = now_ms();
    for (auto& job : snap) {
      if (!job->running.load()) continue;
      int64_t dl = job->deadline_at_ms.load();
      if (dl <= 0) continue;
      if (now >= dl && !job->cancel.load()) {
        job->cancel.store(true);
        OBS_INSTANT("serve", "deadline-fired",
                    "{\"key\":\"" + hex16(job->key) + "\"}");
      }
      if (now >= dl + cfg_.wedge_grace_ms && !job->wedged.load()) {
        job->wedged.store(true);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void Server::record_queue_wait(int64_t ms) {
  std::lock_guard<std::mutex> lk(mu_);
  queue_wait_ms_.push_back(ms);
  if (queue_wait_ms_.size() > 512) queue_wait_ms_.pop_front();
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::string Server::stats_json() const {
  ServeStats s;
  size_t depth = 0, act = 0;
  std::vector<int64_t> waits;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    depth = queue_.size();
    act = active_.size();
    waits.assign(queue_wait_ms_.begin(), queue_wait_ms_.end());
  }
  std::sort(waits.begin(), waits.end());
  auto pct = [&](double p) -> int64_t {
    if (waits.empty()) return 0;
    size_t i = (size_t)(p * (double)(waits.size() - 1));
    return waits[i];
  };
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"connections\":" << s.connections
     << ",\"accepted\":" << s.accepted << ",\"shed\":" << s.shed
     << ",\"deduped\":" << s.deduped << ",\"completed\":" << s.completed
     << ",\"compile_errors\":" << s.compile_errors
     << ",\"deadline_exceeded\":" << s.deadline_exceeded
     << ",\"wedged\":" << s.wedged << ",\"crashed\":" << s.crashed
     << ",\"protocol_errors\":" << s.protocol_errors
     << ",\"drained\":" << s.drained << ",\"queue_depth\":" << depth
     << ",\"active\":" << act << ",\"queue_wait_p50_ms\":" << pct(0.50)
     << ",\"queue_wait_p90_ms\":" << pct(0.90)
     << ",\"queue_wait_p99_ms\":" << pct(0.99)
     << ",\"faults_injected\":" << faults_injected()
     << ",\"draining\":" << (draining_.load() ? 1 : 0) << "}";
  return os.str();
}

}  // namespace dace::serve
