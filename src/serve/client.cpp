#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "serve/server.hpp"  // default_socket_path

namespace dace::serve {

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {
  path_ = opts_.socket_path.empty() ? default_socket_path()
                                    : opts_.socket_path;
}

Reply Client::run(const RunRequest& req) {
  return request(Verb::Run, format_run_request(req), /*retry_shed=*/true);
}

Reply Client::stats() {
  return request(Verb::Stats, "", /*retry_shed=*/false);
}

Reply Client::ping() {
  return request(Verb::Ping, "", /*retry_shed=*/false);
}

Reply Client::metrics() {
  return request(Verb::Metrics, "", /*retry_shed=*/false);
}

Reply Client::request(Verb verb, const std::string& payload,
                      bool retry_shed) {
  Reply r;
  int64_t backoff = std::max(opts_.backoff_ms, 1);
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    ++r.attempts;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      r.code = "E603";
      r.message = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    struct sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path_.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, (struct sockaddr*)&sa, sizeof(sa)) != 0) {
      r.code = "E603";
      r.message = "connect " + path_ + ": " + std::strerror(errno);
      ::close(fd);
      continue;
    }

    std::string why;
    bool wrote = write_frame_faulty(fd, verb, payload, opts_.faults, &why);
    if (!wrote) {
      r.code = "E603";
      r.message = "request write failed: " + why;
      ::close(fd);
      continue;
    }

    Decoded d = read_frame(fd, opts_.io_timeout_ms, opts_.max_payload());
    ::close(fd);
    if (d.status != Decoded::Ok) {
      r.code = d.code.empty() ? "E603" : d.code;
      r.message = d.message.empty() ? "connection closed before a reply"
                                    : d.message;
      continue;
    }

    r.payload = d.frame.payload;
    if (d.frame.verb == Verb::ReplyOk) {
      r.ok = true;
      r.code.clear();
      r.message.clear();
      return r;
    }
    r.ok = false;
    r.code = json_find_string(d.frame.payload, "code");
    r.message = json_find_string(d.frame.payload, "message");
    bool retryable = retry_shed && (r.code == "E607" || r.code == "E610");
    if (!retryable) return r;
    // Overload/drain: honor the server's pacing hint when it gave one.
    int64_t hint = json_find_int(d.frame.payload, "retry_after_ms", -1);
    if (hint > 0) backoff = std::max(backoff, hint);
  }
  return r;
}

}  // namespace dace::serve
