// sdfg-serve wire protocol (ROADMAP item 2: the daemon half of the
// compile-and-serve architecture, in front of the PR-8 artifact cache).
//
// Frames are length-prefixed, versioned and checksummed so a daemon
// facing arbitrary clients can never be crashed or desynchronized by a
// bad peer -- every malformed input becomes a structured E6xx
// diagnostic, never undefined behavior:
//
//   offset  size  field
//   0       4     magic "DSRV" (0x44 0x53 0x52 0x56, little-endian u32)
//   4       2     protocol version (currently 1)
//   6       2     verb
//   8       4     payload length in bytes
//   12      4     reserved (must be 0)
//   16      8     FNV-1a 64 checksum of the payload bytes
//   24      n     payload
//
// Decode failures (docs/SERVE.md, docs/DIAGNOSTICS.md):
//   E600 bad magic            E601 unsupported version
//   E602 oversized frame      E603 truncated frame / read timeout
//   E604 payload checksum     E605 unknown verb
//   E606 malformed request body
// Service-level errors the daemon replies with:
//   E607 overload shed (carries retry_after_ms)
//   E608 deadline exceeded / job cancelled or wedged
//   E609 job crashed (executor-thread exception)
//   E610 daemon draining
//   E611 program failed to compile (carries frontend diagnostics)
//
// The fault shim at the bottom mirrors distributed/faults.* and the
// cache's FsFaultPlan: a seeded, deterministic schedule of
// connection-level faults (mid-frame disconnect, slow-loris writes,
// corrupt frames, executor-thread exceptions, wedged jobs, deadline
// storms) driven through the `ctest -L chaos` serve sweep.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dace::serve {

constexpr uint32_t kMagic = 0x56525344u;  // "DSRV" read little-endian
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderBytes = 24;

enum class Verb : uint16_t {
  Run = 1,      // compile-and-run a DaCeLang program
  Stats = 2,    // serve counters as JSON
  Ping = 3,     // liveness probe
  Metrics = 4,  // metrics registry, Prometheus text exposition
  ReplyOk = 100,
  ReplyError = 101,
};

const char* verb_name(Verb v);
bool known_verb(uint16_t v);

struct Frame {
  Verb verb = Verb::Ping;
  std::string payload;
};

/// Header + payload, ready to write to a stream.
std::string encode_frame(Verb verb, const std::string& payload);

/// Outcome of reading one frame off a stream.
struct Decoded {
  enum Status {
    Ok,     // frame holds a verified frame
    Eof,    // orderly close before any header byte
    Error,  // protocol violation: code/message name the E6xx diagnostic
  };
  Status status = Error;
  Frame frame;
  std::string code;     // "E600".."E605" when status == Error
  std::string message;  // human-readable detail
};

/// Decode one frame from an in-memory byte string (tests, selftests).
/// Short input is E603; `max_payload` bounds accepted frames (E602).
Decoded decode_frame(const std::string& bytes, size_t max_payload);

/// Blocking frame read from `fd` with a poll(2) deadline per read: a
/// peer that stalls mid-frame (slow loris) trips E603 after
/// `io_timeout_ms` instead of wedging the reader thread.
Decoded read_frame(int fd, int io_timeout_ms, size_t max_payload);

/// Write one frame; false + `why` on a short write or peer reset.
bool write_frame(int fd, Verb verb, const std::string& payload,
                 std::string* why);

// ---------------------------------------------------------------------------
// Run requests / replies
// ---------------------------------------------------------------------------

/// Body of a Run frame.  Wire format is line-based key=value headers, a
/// literal "--" separator line, then the DaCeLang source verbatim:
///
///   id=7
///   deadline_ms=500
///   weight=2
///   sym.N=64
///   --
///   @dace.program
///   def f(...): ...
struct RunRequest {
  std::string source;
  std::string function;  // requested function name ("" = last)
  std::map<std::string, int64_t> symbols;
  int64_t deadline_ms = 0;  // 0 = server default
  int weight = 1;           // fair-queueing weight (clamped to [1, 100])
  std::string id;           // client correlation id, echoed in the reply
};

std::string format_run_request(const RunRequest& r);
/// False + `why` on a malformed body (the server replies E606).
bool parse_run_request(const std::string& payload, RunRequest* out,
                       std::string* why);

/// Dedup/content key of a request: everything that determines the
/// result (source, function, symbol bindings) -- the in-flight dedup
/// map and the persisted negative cache are both keyed on this.
uint64_t request_key(const RunRequest& r);

/// `{"code":"E6xx","message":...}` (+ `"retry_after_ms":n` when >= 0).
std::string error_payload(const std::string& code, const std::string& message,
                          int64_t retry_after_ms = -1);

// Minimal flat-JSON field extraction for reply payloads (the protocol
// emits only one nesting level; a full parser lives in sdfg-prof).
std::string json_find_string(const std::string& payload,
                             const std::string& key);
int64_t json_find_int(const std::string& payload, const std::string& key,
                      int64_t dflt);
/// The `"outputs":{...}` object of an ok reply -- the deterministic part
/// two runs of the same job must agree on bit-for-bit ("" if absent).
std::string extract_outputs(const std::string& payload);

// ---------------------------------------------------------------------------
// Connection-level fault injection (the serve chaos shim)
// ---------------------------------------------------------------------------

enum class ServeFault {
  None = 0,
  Disconnect,     // client closes mid-frame (header or payload torn)
  SlowLoris,      // client dribbles the frame byte-batches with delays
  Corrupt,        // a payload byte is flipped after checksumming
  CrashJob,       // server: the executor thread throws mid-job
  Wedge,          // server: the job ignores cancellation (wedged executor)
  DeadlineStorm,  // client: deadline_ms forced to 1 (mass expiry)
};

const char* serve_fault_name(ServeFault f);

/// Seeded deterministic fault schedule.  decide() is a pure function of
/// (seed, op index); each injection site applies only the fault kinds it
/// can express and treats the rest as None, so one plan drives client
/// write faults and server job faults from the same draw sequence.
struct ServeFaultPlan {
  uint64_t seed = 0;
  double disconnect_prob = 0;
  double slow_prob = 0;
  double corrupt_prob = 0;
  double crash_prob = 0;
  double wedge_prob = 0;
  double storm_prob = 0;

  bool active() const;
  ServeFault decide(uint64_t op_index) const;

  /// Canonical "key=value,..." spec (inverse of parse); "" when inactive.
  std::string to_string() const;
  /// Parse "seed=3,disconnect=0.2,slow=0.1,corrupt=0.2,crash=0.1,
  /// wedge=0.05,storm=0.1".
  static ServeFaultPlan parse(const std::string& spec);
  /// DACE_SERVE_FAULTS (spec) with DACE_SERVE_FAULT_SEED overriding seed.
  static ServeFaultPlan from_env();
};

/// Install a plan process-wide (the server consults it per job; client
/// write faults use the plan carried in ClientOptions instead).  A
/// default-constructed plan disarms the shim.
void set_fault_plan(const ServeFaultPlan& plan);
const ServeFaultPlan& fault_plan();
/// Draw the next fault decision from `plan` and count/trace injections.
ServeFault next_fault(const ServeFaultPlan& plan);
/// Faults injected since process start (monotonic; test assertions).
uint64_t faults_injected();

/// Chaos-aware frame write (client side): consults `plan` once per call
/// and applies Disconnect / SlowLoris / Corrupt; other kinds are
/// ignored here.  Fault-free when the plan is inactive.
bool write_frame_faulty(int fd, Verb verb, const std::string& payload,
                        const ServeFaultPlan& plan, std::string* why);

}  // namespace dace::serve
