// FPGATransformSDFG + StreamingComposition (Sections 3.1, 3.4).
//
// Containers move to device DRAM (FPGA_Global); the streaming-composition
// pass of the paper -- separate pipelined units connected through FIFO
// streams, memory read/written in bursts -- is realized by the FPGA
// executor (fpga/fpga_executor.cpp), which decomposes every pipeline map
// into burst readers, a processing element, and burst writers with an
// initiation-interval cost model.  This pass performs the IR-side part:
// storage assignment and marking maps as FPGA pipelines.
#include "transforms/auto_optimize.hpp"

namespace dace::xf {

void fpga_transform_sdfg(ir::SDFG& sdfg) {
  std::vector<std::string> names;
  for (const auto& [name, d] : sdfg.arrays()) {
    if (d.transient && !d.is_stream && !d.is_scalar()) names.push_back(name);
  }
  for (const auto& name : names) {
    ir::DataDesc& d = sdfg.array(name);
    if (d.storage == ir::Storage::Default) {
      // Small constant-size buffers fit on-chip; everything else streams
      // from DRAM.
      auto n = d.num_elements();
      d.storage = (n.is_constant() && n.constant() <= 4096)
                      ? ir::Storage::FPGALocal
                      : ir::Storage::FPGAGlobal;
    }
  }
}

}  // namespace dace::xf
