// GPUTransformSDFG (Section 3.1): prepare an SDFG for the (simulated)
// GPU device.  Top-level maps have already been scheduled GPU_Device by
// the auto-optimizer; this pass moves transient containers to device
// global memory.  Host<->device transfers for arguments are charged by
// the GPU executor at kernel-argument granularity (gpu/gpu_executor.cpp),
// mirroring the copy nodes GPUTransformSDFG inserts in DaCe.
#include "transforms/auto_optimize.hpp"

namespace dace::xf {

void gpu_transform_sdfg(ir::SDFG& sdfg) {
  std::vector<std::string> names;
  for (const auto& [name, d] : sdfg.arrays()) {
    if (d.transient && !d.is_stream && !d.is_scalar()) names.push_back(name);
  }
  for (const auto& name : names) {
    ir::DataDesc& d = sdfg.array(name);
    if (d.storage == ir::Storage::Default ||
        d.storage == ir::Storage::CPUStack) {
      d.storage = ir::Storage::GPUGlobal;
    }
  }
}

}  // namespace dace::xf
