// Greedy subgraph (map) fusion -- the centerpiece of the auto-optimizer
// (Section 3.1, pass 2).
//
// Two top-level maps connected through a transient array are fused when
// their iteration spaces match and, per iteration, the consumer reads
// exactly the element the producer wrote (checked with symbolic
// comparisons on the memlets).  The intermediate array collapses into a
// direct tasklet-to-tasklet value, removing a full memory round trip --
// the effect responsible for the stencil speedups in Figs. 7 and 8.
#pragma once

#include "transforms/pass.hpp"

namespace dace::xf {

/// Fuse one producer/consumer map pair; returns true if fused.
bool map_fusion(ir::SDFG& sdfg);

}  // namespace dace::xf
