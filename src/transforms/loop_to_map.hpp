// LoopToMap (Section 2.2): detects for-loops in the IR whose iterations
// can safely execute in parallel (symbolic affine-expression analysis on
// the body's read/write sets) and converts them to map scopes.
//
// Accumulation loops (every iteration read-modify-writes the same
// elements, e.g. the convolution in resnet) are converted to maps with
// write-conflict-resolution memlets instead -- this is what later yields
// atomics on GPU (the resnet anomaly of Section 3.4.2).
#pragma once

#include "transforms/pass.hpp"

namespace dace::xf {

/// Convert one parallelizable guard/body/increment loop into a map.
bool loop_to_map(ir::SDFG& sdfg);

/// CodeExpr -> symbolic expression, when representable (integer ops over
/// symbols and constants). Used to recover loop bounds from conditions.
std::optional<sym::Expr> code_to_sym(const ir::CodeExpr& e);

}  // namespace dace::xf
