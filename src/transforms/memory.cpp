#include "transforms/memory.hpp"

namespace dace::xf {

bool mitigate_transient_allocation(ir::SDFG& sdfg,
                                   int64_t stack_limit_elems) {
  bool changed = false;
  // Symbols assigned on interstate edges (loop variables) are not input
  // parameters; shapes depending on them cannot be persistent.
  std::set<std::string> assigned;
  for (const auto& e : sdfg.interstate_edges()) {
    for (const auto& [k, v] : e.assignments) {
      (void)v;
      assigned.insert(k);
    }
  }
  // Collect names first: we only mutate descriptors, not the map.
  for (const auto& name : [&] {
         std::vector<std::string> names;
         for (const auto& [n, d] : sdfg.arrays()) {
           if (d.transient && !d.is_stream) names.push_back(n);
         }
         return names;
       }()) {
    ir::DataDesc& d = sdfg.array(name);
    // Constant-size small arrays -> stack.
    auto n = d.num_elements();
    if (n.is_constant() && n.constant() <= stack_limit_elems &&
        d.storage == ir::Storage::Default && !d.is_scalar()) {
      d.storage = ir::Storage::CPUStack;
      changed = true;
      continue;
    }
    // Sizes depending only on input symbols -> persistent.
    bool input_only = true;
    for (const auto& s : d.shape) {
      for (const auto& fs : s.free_symbols()) input_only &= !assigned.count(fs);
    }
    if (input_only && !d.is_scalar() &&
        d.lifetime == ir::Lifetime::Scope) {
      d.lifetime = ir::Lifetime::Persistent;
      changed = true;
    }
  }
  return changed;
}

}  // namespace dace::xf
