// Dataflow-coarsening transformations (Section 2.4).
//
// The direct frontend translation is control-centric (one state per
// operation, "-O0").  This pass coarsens dataflow: state fusion merges
// states whose access sets cannot race (checked with symbolic set
// intersection), redundant-copy removal deletes materialize-then-copy
// patterns, nested-SDFG inlining flattens calls, and dead state/dataflow
// elimination cleans up.  simplify() runs all of them to fixpoint.
#pragma once

#include "transforms/pass.hpp"

namespace dace::xf {

/// Merge one fusable state pair (Fig. 4); returns true if fused.
bool state_fusion(ir::SDFG& sdfg);

/// Remove one producer -> transient -> identity-copy -> target pattern by
/// writing the producer output directly into the target (Fig. 11's
/// shared-memory analogue; also the paper's redundant copy removal).
bool redundant_copy_removal(ir::SDFG& sdfg);

/// Remove states unreachable from the start state.
bool dead_state_elimination(ir::SDFG& sdfg);

/// Remove edgeless access nodes and unreferenced transient containers.
bool dead_dataflow_elimination(ir::SDFG& sdfg);

/// Inline one nested SDFG whose callee is a single-state dataflow graph.
bool inline_nested_sdfg(ir::SDFG& sdfg);

/// Remove maps whose every dimension has extent 1, substituting the
/// parameter values ("degenerate maps", Section 3.1 map-scope cleanup).
bool trivial_map_elimination(ir::SDFG& sdfg);

/// Full coarsening pass to fixpoint.
void simplify(ir::SDFG& sdfg);

}  // namespace dace::xf
