#include "transforms/auto_optimize.hpp"

#include "transforms/loop_to_map.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/map_transforms.hpp"
#include "transforms/memory.hpp"
#include "transforms/simplify.hpp"

namespace dace::xf {

// Registered by the device modules (gpu/fpga); CPU needs no extra pass.
void gpu_transform_sdfg(ir::SDFG& sdfg);   // gpu_transform.cpp
void fpga_transform_sdfg(ir::SDFG& sdfg);  // fpga_transform.cpp

void auto_optimize(ir::SDFG& sdfg, ir::DeviceType device,
                   const AutoOptOptions& opts) {
  // Dataflow coarsening ("-O1").
  if (opts.coarsen) simplify(sdfg);

  // (1)+(2) Map-scope cleanup and greedy subgraph fusion. LoopToMap needs
  // fused single-map loop bodies; fusion needs the states LoopToMap and
  // state fusion produce -- iterate the passes jointly to fixpoint.
  apply_repeated(sdfg, trivial_map_elimination);
  bool changed = true;
  while (changed) {
    changed = false;
    if (opts.fusion) changed |= apply_repeated(sdfg, map_fusion) > 0;
    if (opts.coarsen && changed) simplify(sdfg);
    if (opts.loop_to_map) {
      bool converted = apply_repeated(sdfg, loop_to_map) > 0;
      changed |= converted;
      if (opts.coarsen && converted) simplify(sdfg);
    }
  }
  if (opts.collapse) apply_repeated(sdfg, map_collapse);

  // (3) Tile WCR maps to reduce atomic updates.
  if (opts.tile_wcr) {
    // Schedules must be known before tiling decides atomicity; set the
    // target schedule first.
    ir::Schedule sched = ir::Schedule::CPUParallel;
    if (device == ir::DeviceType::GPU) sched = ir::Schedule::GPUDevice;
    if (device == ir::DeviceType::FPGA) sched = ir::Schedule::FPGAPipeline;
    set_toplevel_schedules(sdfg, sched, device == ir::DeviceType::CPU);
    apply_repeated(sdfg, [&](ir::SDFG& g) {
      return tile_wcr_map(g, opts.wcr_tile_size);
    });
  }

  // (4) Transient allocation mitigation.
  if (opts.transient_mitigation) mitigate_transient_allocation(sdfg);

  // Device specialization.
  switch (device) {
    case ir::DeviceType::CPU:
      set_toplevel_schedules(sdfg, ir::Schedule::CPUParallel,
                             /*omp_collapse=*/true);
      break;
    case ir::DeviceType::GPU:
      set_toplevel_schedules(sdfg, ir::Schedule::GPUDevice, false);
      gpu_transform_sdfg(sdfg);
      break;
    case ir::DeviceType::FPGA:
      set_toplevel_schedules(sdfg, ir::Schedule::FPGAPipeline, false);
      fpga_transform_sdfg(sdfg);
      break;
  }
  sdfg.validate();
}

}  // namespace dace::xf
