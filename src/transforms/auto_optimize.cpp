#include "transforms/auto_optimize.hpp"

#include "common/metrics.hpp"
#include "common/obs.hpp"
#include "common/profdb.hpp"
#include "transforms/loop_to_map.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/map_transforms.hpp"
#include "transforms/memory.hpp"
#include "transforms/pass.hpp"
#include "transforms/simplify.hpp"

namespace dace::xf {

// Registered by the device modules (gpu/fpga); CPU needs no extra pass.
void gpu_transform_sdfg(ir::SDFG& sdfg);   // gpu_transform.cpp
void fpga_transform_sdfg(ir::SDFG& sdfg);  // fpga_transform.cpp

void auto_optimize(ir::SDFG& sdfg, ir::DeviceType device,
                   const AutoOptOptions& opts) {
  Pipeline pipe("auto_optimize");
  if (opts.verify.has_value()) pipe.set_verify(*opts.verify);

  // Profile-guided pass selection (common/profdb.*): the pipeline history
  // for this graph -- fingerprinted *before* any pass touches it -- knows
  // which passes were only ever rolled back here.  Under DACE_PGO=1 those
  // passes are logged and skipped; a rolled-back pass never changed the
  // graph, so skipping it is behavior-preserving and saves its (possibly
  // repeated) doomed snapshot/validate cycle.  With DACE_PGO unset the
  // history is recorded but never consulted.
  const std::string fingerprint_src = sdfg.save();
  const uint64_t sdfg_hash =
      prof::fnv1a(fingerprint_src.data(), fingerprint_src.size());
  prof::PipelineProfile history;
  const bool pgo = prof::pgo_enabled() &&
                   prof::ProfileDB::instance().load_pipeline(sdfg_hash,
                                                             &history);
  auto doomed = [&](const std::string& name) {
    if (!pgo) return false;
    for (const prof::PassStat& s : history.passes) {
      if (s.name == name && s.rolled_back > 0 && s.committed == 0) {
        METRIC_INC("dacepp_pgo_pass_skips_total");
        OBS_INSTANT("pass", "pgo-skip",
                    "{\"pass\":\"" + name + "\"}");
        return true;
      }
    }
    return false;
  };
  auto add = [&](const std::string& name, Transformation t) {
    if (!doomed(name)) pipe.add(name, std::move(t));
  };
  auto add_fixpoint = [&](const std::string& name, Transformation t) {
    if (!doomed(name)) pipe.add_fixpoint(name, std::move(t));
  };

  // Dataflow coarsening ("-O1").
  if (opts.coarsen) {
    add("coarsen", [](ir::SDFG& g) {
      simplify(g);
      return true;
    });
  }

  // (1)+(2) Map-scope cleanup and greedy subgraph fusion. LoopToMap needs
  // fused single-map loop bodies; fusion needs the states LoopToMap and
  // state fusion produce -- iterate the passes jointly to fixpoint.
  add_fixpoint("trivial-map-elimination", trivial_map_elimination);
  // Captures are by value: with a pass timeout the body runs on a worker
  // thread that may outlive this frame if abandoned.
  add("fusion+loop-to-map", [opts](ir::SDFG& g) {
    bool any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      if (opts.fusion) changed |= apply_repeated(g, map_fusion) > 0;
      if (opts.coarsen && changed) simplify(g);
      if (opts.loop_to_map) {
        bool converted = apply_repeated(g, loop_to_map) > 0;
        changed |= converted;
        if (opts.coarsen && converted) simplify(g);
      }
      any |= changed;
    }
    return any;
  });
  if (opts.collapse) add_fixpoint("map-collapse", map_collapse);

  // (3) Tile WCR maps to reduce atomic updates.
  if (opts.tile_wcr) {
    add("wcr-tiling", [tile_size = opts.wcr_tile_size, device](ir::SDFG& g) {
      // Schedules must be known before tiling decides atomicity; set the
      // target schedule first.
      ir::Schedule sched = ir::Schedule::CPUParallel;
      if (device == ir::DeviceType::GPU) sched = ir::Schedule::GPUDevice;
      if (device == ir::DeviceType::FPGA) sched = ir::Schedule::FPGAPipeline;
      set_toplevel_schedules(g, sched, device == ir::DeviceType::CPU);
      apply_repeated(g, [&](ir::SDFG& gg) {
        return tile_wcr_map(gg, tile_size);
      });
      return true;
    });
  }

  // (4) Transient allocation mitigation.
  if (opts.transient_mitigation) {
    add("transient-mitigation", [](ir::SDFG& g) {
      mitigate_transient_allocation(g);
      return true;
    });
  }

  // Injected passes (tests, fuzzer fault injection).
  for (const Pass& p : opts.extra_passes) add(p.name, p.apply);

  // Device specialization.
  add("device-specialize", [device](ir::SDFG& g) {
    switch (device) {
      case ir::DeviceType::CPU:
        set_toplevel_schedules(g, ir::Schedule::CPUParallel,
                               /*omp_collapse=*/true);
        break;
      case ir::DeviceType::GPU:
        set_toplevel_schedules(g, ir::Schedule::GPUDevice, false);
        gpu_transform_sdfg(g);
        break;
      case ir::DeviceType::FPGA:
        set_toplevel_schedules(g, ir::Schedule::FPGAPipeline, false);
        fpga_transform_sdfg(g);
        break;
    }
    return true;
  });

  PassReport report = pipe.run_transactional(sdfg);

  // Record this run's per-pass win/loss into the pipeline history and
  // remember the last committed rewriting pass (executor teardown stamps
  // it into the map profiles it flushes).  Recording is write-only: it
  // cannot perturb the run that produced it.
  {
    std::string last;
    std::vector<prof::PassStat> delta;
    delta.reserve(report.outcomes.size());
    for (const PassOutcome& o : report.outcomes) {
      prof::PassStat s;
      s.name = o.name;
      s.runs = 1;
      s.applied = o.applied ? 1 : 0;
      s.committed = o.committed ? 1 : 0;
      s.rolled_back = o.rolled_back ? 1 : 0;
      if (o.committed && o.applied) last = o.name;
      delta.push_back(std::move(s));
    }
    if (!last.empty()) prof::note_last_rewrite(last);
    prof::ProfileDB& db = prof::ProfileDB::instance();
    if (db.enabled() && !delta.empty()) db.merge_pipeline(sdfg_hash, delta);
  }

  if (opts.report) *opts.report = std::move(report);
  sdfg.validate();
}

}  // namespace dace::xf
