#include "transforms/auto_optimize.hpp"

#include "transforms/loop_to_map.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/map_transforms.hpp"
#include "transforms/memory.hpp"
#include "transforms/pass.hpp"
#include "transforms/simplify.hpp"

namespace dace::xf {

// Registered by the device modules (gpu/fpga); CPU needs no extra pass.
void gpu_transform_sdfg(ir::SDFG& sdfg);   // gpu_transform.cpp
void fpga_transform_sdfg(ir::SDFG& sdfg);  // fpga_transform.cpp

void auto_optimize(ir::SDFG& sdfg, ir::DeviceType device,
                   const AutoOptOptions& opts) {
  Pipeline pipe("auto_optimize");
  if (opts.verify.has_value()) pipe.set_verify(*opts.verify);

  // Dataflow coarsening ("-O1").
  if (opts.coarsen) {
    pipe.add("coarsen", [](ir::SDFG& g) {
      simplify(g);
      return true;
    });
  }

  // (1)+(2) Map-scope cleanup and greedy subgraph fusion. LoopToMap needs
  // fused single-map loop bodies; fusion needs the states LoopToMap and
  // state fusion produce -- iterate the passes jointly to fixpoint.
  pipe.add_fixpoint("trivial-map-elimination", trivial_map_elimination);
  // Captures are by value: with a pass timeout the body runs on a worker
  // thread that may outlive this frame if abandoned.
  pipe.add("fusion+loop-to-map", [opts](ir::SDFG& g) {
    bool any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      if (opts.fusion) changed |= apply_repeated(g, map_fusion) > 0;
      if (opts.coarsen && changed) simplify(g);
      if (opts.loop_to_map) {
        bool converted = apply_repeated(g, loop_to_map) > 0;
        changed |= converted;
        if (opts.coarsen && converted) simplify(g);
      }
      any |= changed;
    }
    return any;
  });
  if (opts.collapse) pipe.add_fixpoint("map-collapse", map_collapse);

  // (3) Tile WCR maps to reduce atomic updates.
  if (opts.tile_wcr) {
    pipe.add("wcr-tiling", [tile_size = opts.wcr_tile_size, device](ir::SDFG& g) {
      // Schedules must be known before tiling decides atomicity; set the
      // target schedule first.
      ir::Schedule sched = ir::Schedule::CPUParallel;
      if (device == ir::DeviceType::GPU) sched = ir::Schedule::GPUDevice;
      if (device == ir::DeviceType::FPGA) sched = ir::Schedule::FPGAPipeline;
      set_toplevel_schedules(g, sched, device == ir::DeviceType::CPU);
      apply_repeated(g, [&](ir::SDFG& gg) {
        return tile_wcr_map(gg, tile_size);
      });
      return true;
    });
  }

  // (4) Transient allocation mitigation.
  if (opts.transient_mitigation) {
    pipe.add("transient-mitigation", [](ir::SDFG& g) {
      mitigate_transient_allocation(g);
      return true;
    });
  }

  // Injected passes (tests, fuzzer fault injection).
  for (const Pass& p : opts.extra_passes) pipe.add(p.name, p.apply);

  // Device specialization.
  pipe.add("device-specialize", [device](ir::SDFG& g) {
    switch (device) {
      case ir::DeviceType::CPU:
        set_toplevel_schedules(g, ir::Schedule::CPUParallel,
                               /*omp_collapse=*/true);
        break;
      case ir::DeviceType::GPU:
        set_toplevel_schedules(g, ir::Schedule::GPUDevice, false);
        gpu_transform_sdfg(g);
        break;
      case ir::DeviceType::FPGA:
        set_toplevel_schedules(g, ir::Schedule::FPGAPipeline, false);
        fpga_transform_sdfg(g);
        break;
    }
    return true;
  });

  PassReport report = pipe.run_transactional(sdfg);
  if (opts.report) *opts.report = std::move(report);
  sdfg.validate();
}

}  // namespace dace::xf
