#include "transforms/pass.hpp"

namespace dace::xf {

int apply_repeated(ir::SDFG& sdfg, const Transformation& t,
                   int max_iterations) {
  int n = 0;
  while (n < max_iterations && t(sdfg)) ++n;
  return n;
}

Pipeline& Pipeline::add(const std::string& name, Transformation t) {
  passes_.push_back({name, std::move(t)});
  return *this;
}

Pipeline& Pipeline::add_fixpoint(const std::string& name, Transformation t) {
  passes_.push_back({name, [t = std::move(t)](ir::SDFG& g) {
                       return apply_repeated(g, t) > 0;
                     }});
  return *this;
}

bool Pipeline::verify() const {
  return verify_.value_or(analysis::verify_env());
}

int Pipeline::run(ir::SDFG& sdfg) const {
  const bool verifying = verify();
  last_report_ = analysis::AnalysisReport();
  std::set<std::string> baseline;
  if (verifying) {
    sdfg.validate();
    baseline = analysis::analyze(sdfg).error_fingerprints();
  }
  int changed = 0;
  for (const Pass& p : passes_) {
    bool applied = false;
    try {
      applied = p.apply(sdfg);
    } catch (const Error& e) {
      throw err("pipeline '", name_, "': pass '", p.name,
                "' failed: ", e.what());
    }
    if (!applied) continue;
    ++changed;
    if (!verifying) continue;
    try {
      sdfg.validate();
    } catch (const Error& e) {
      throw err("pipeline '", name_, "': pass '", p.name,
                "' broke structural validation: ", e.what());
    }
    last_report_ = analysis::analyze(sdfg);
    for (const auto& d : last_report_.diagnostics()) {
      if (d.severity != analysis::Severity::Error) continue;
      if (baseline.count(d.fingerprint())) continue;
      throw err("pipeline '", name_, "': pass '", p.name,
                "' introduced a semantic error: ", d.to_string());
    }
  }
  return changed;
}

void rename_map_params(ir::State& st, int entry,
                       const std::vector<std::string>& new_params) {
  auto* me = st.node_as<ir::MapEntry>(entry);
  DACE_CHECK(me != nullptr, "rename_map_params: not a map entry");
  DACE_CHECK(me->params.size() == new_params.size(),
             "rename_map_params: rank mismatch");
  sym::SubstMap smap;
  std::map<std::string, ir::CodeExpr> cmap;
  bool any = false;
  for (size_t i = 0; i < new_params.size(); ++i) {
    if (me->params[i] == new_params[i]) continue;
    smap[me->params[i]] = sym::Expr::symbol(new_params[i]);
    cmap[me->params[i]] = ir::CodeExpr::symbol(new_params[i]);
    any = true;
  }
  if (!any) return;
  std::vector<int> scope = st.scope_nodes(entry);
  std::set<int> scope_set(scope.begin(), scope.end());
  scope_set.insert(entry);
  scope_set.insert(me->exit_node);
  for (auto& e : st.edges()) {
    // Inner edges: either endpoint inside the scope (incl. entry/exit
    // connectors on the inside).
    bool inner = scope_set.count(e.src) && scope_set.count(e.dst);
    if (inner && !e.memlet.empty()) e.memlet.subset = e.memlet.subset.subs(smap);
  }
  for (int id : scope) {
    if (auto* t = st.node_as<ir::Tasklet>(id)) {
      t->code = t->code.subs_symbols(cmap);
    } else if (auto* m = st.node_as<ir::MapEntry>(id)) {
      sym::Subset r = m->range;
      std::vector<sym::Range> rs;
      for (const auto& rr : r.ranges()) rs.push_back(rr.subs(smap));
      m->range = sym::Subset(rs);
    }
  }
  me->params = new_params;
}

bool is_identity_tasklet(const ir::Tasklet& t) {
  return t.code.op() == ir::CodeOp::Input && t.inputs.size() == 1;
}

std::vector<int> states_using(const ir::SDFG& sdfg, const std::string& name) {
  std::vector<int> out;
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    bool used = false;
    for (int nid : st.node_ids()) {
      if (const auto* a = st.node_as<ir::AccessNode>(nid)) {
        used |= a->data == name;
      }
    }
    for (const auto& e : st.edges()) used |= e.memlet.data == name;
    if (used) out.push_back(sid);
  }
  return out;
}

bool container_referenced(const ir::SDFG& sdfg, const std::string& name) {
  return !states_using(sdfg, name).empty();
}

}  // namespace dace::xf
