#include "transforms/pass.hpp"

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/diag.hpp"
#include "common/obs.hpp"

namespace dace::xf {

int apply_repeated(ir::SDFG& sdfg, const Transformation& t,
                   int max_iterations) {
  int n = 0;
  while (n < max_iterations && t(sdfg)) ++n;
  return n;
}

Pipeline& Pipeline::add(const std::string& name, Transformation t) {
  passes_.push_back({name, std::move(t)});
  return *this;
}

Pipeline& Pipeline::add_fixpoint(const std::string& name, Transformation t) {
  passes_.push_back({name, [t = std::move(t)](ir::SDFG& g) {
                       return apply_repeated(g, t) > 0;
                     }});
  return *this;
}

bool Pipeline::verify() const {
  return verify_.value_or(analysis::verify_env());
}

int Pipeline::run(ir::SDFG& sdfg) const {
  const bool verifying = verify();
  last_report_ = analysis::AnalysisReport();
  std::set<std::string> baseline;
  if (verifying) {
    sdfg.validate();
    baseline = analysis::analyze(sdfg).error_fingerprints();
  }
  int changed = 0;
  for (const Pass& p : passes_) {
    obs::Span pspan("pass", p.name);
    bool applied = false;
    try {
      applied = p.apply(sdfg);
    } catch (const Error& e) {
      throw err("pipeline '", name_, "': pass '", p.name,
                "' failed: ", e.what());
    }
    if (pspan.active()) {
      pspan.set_args("{\"pipeline\":\"" + diag::json_escape(name_) +
                     "\",\"applied\":" + (applied ? "true" : "false") + "}");
    }
    if (!applied) continue;
    ++changed;
    if (!verifying) continue;
    try {
      sdfg.validate();
    } catch (const Error& e) {
      throw err("pipeline '", name_, "': pass '", p.name,
                "' broke structural validation: ", e.what());
    }
    last_report_ = analysis::analyze(sdfg);
    for (const auto& d : last_report_.diagnostics()) {
      if (d.severity != analysis::Severity::Error) continue;
      if (baseline.count(d.fingerprint())) continue;
      throw err("pipeline '", name_, "': pass '", p.name,
                "' introduced a semantic error: ", d.to_string());
    }
  }
  return changed;
}

// -- transactional execution ------------------------------------------------

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && std::string(v) != "0";
}

/// Result of executing one pass body (no commit decision yet).
struct PassRun {
  bool applied = false;
  bool timed_out = false;
  std::string error;  // empty = completed without throwing
};

PassRun run_body(const Transformation& body, ir::SDFG& g) {
  PassRun r;
  try {
    r.applied = body(g);
  } catch (const std::exception& e) {
    r.error = e.what();
    if (r.error.empty()) r.error = "unknown error";
  } catch (...) {
    r.error = "non-standard exception";
  }
  return r;
}

/// Executes a pass against `graph`, bounded by `timeout_ms` when > 0.
/// With a timeout the body runs in a detached worker thread that owns a
/// shared reference to the graph: abandoning it on timeout is safe
/// because the orphaned worker keeps mutating only its own (discarded)
/// copy, never the committed graph.
PassRun execute_pass(const Pass& p, std::shared_ptr<ir::SDFG> graph,
                     int timeout_ms) {
  if (timeout_ms <= 0) return run_body(p.apply, *graph);
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    PassRun result;
  };
  auto shared = std::make_shared<Shared>();
  std::thread([shared, body = p.apply, graph]() {
    PassRun r = run_body(body, *graph);
    std::lock_guard<std::mutex> lk(shared->m);
    shared->result = std::move(r);
    shared->done = true;
    shared->cv.notify_all();
  }).detach();
  std::unique_lock<std::mutex> lk(shared->m);
  if (!shared->cv.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                           [&] { return shared->done; })) {
    PassRun r;
    r.timed_out = true;
    r.error = "timed out after " + std::to_string(timeout_ms) + " ms";
    return r;
  }
  return shared->result;
}

/// Commit gate: structural validation, serializer round-trip (the
/// fallback integrity check -- the hardened loader rejects dangling
/// references a corrupted graph would produce), and in verify mode the
/// semantic analyzer against the pre-pipeline baseline.  Returns the
/// reason the graph must not be committed, or empty.
std::string integrity_error(ir::SDFG& g, bool verifying,
                            const std::set<std::string>& baseline,
                            analysis::AnalysisReport* out_report) {
  try {
    g.validate();
  } catch (const Error& e) {
    return std::string("broke structural validation: ") + e.what();
  }
  try {
    auto reloaded = ir::load_sdfg(g.save());
    if (reloaded->dump() != g.dump())
      return "serializer round-trip changed the graph";
  } catch (const Error& e) {
    return std::string("serializer round-trip failed: ") + e.what();
  }
  if (verifying) {
    analysis::AnalysisReport rep = analysis::analyze(g);
    for (const auto& d : rep.diagnostics()) {
      if (d.severity != analysis::Severity::Error) continue;
      if (baseline.count(d.fingerprint())) continue;
      return "introduced a semantic error: " + d.to_string();
    }
    if (out_report) *out_report = std::move(rep);
  }
  return "";
}

}  // namespace

std::string PassReport::summary() const {
  std::ostringstream os;
  os << "pipeline '" << pipeline << "': " << committed << " committed, "
     << rolled_back << " rolled back";
  if (!first_broken_pass.empty()) {
    os << "; first broken pass: '" << first_broken_pass << "'";
    if (bisected) os << " (bisected)";
  }
  os << "\n";
  for (const auto& o : outcomes) {
    const char* tag = o.rolled_back ? (o.timed_out ? "TIMEOUT" : "ROLLBACK")
                                    : (o.applied ? "ok" : "noop");
    os << "  [" << tag << "] " << o.name;
    if (o.ms > 0.0) {
      os.setf(std::ios::fixed);
      os.precision(1);
      os << " (" << o.ms << " ms)";
    }
    if (!o.error.empty()) os << " -- " << o.error;
    os << "\n";
  }
  return os.str();
}

int Pipeline::pass_timeout_ms() {
  const char* v = std::getenv("DACE_XF_PASS_TIMEOUT");
  if (!v || !*v) return 0;
  return std::atoi(v);
}

bool Pipeline::bisect_env() { return env_truthy("DACE_XF_BISECT"); }

PassReport Pipeline::run_transactional(ir::SDFG& sdfg) const {
  const bool verifying = verify();
  const int timeout_ms = pass_timeout_ms();
  PassReport report;
  report.pipeline = name_;
  last_report_ = analysis::AnalysisReport();

  std::set<std::string> baseline;
  try {
    sdfg.validate();
    baseline = analysis::analyze(sdfg).error_fingerprints();
  } catch (const Error& e) {
    PassOutcome o;
    o.name = "<input>";
    o.rolled_back = true;
    o.error = std::string("input graph failed validation: ") + e.what();
    report.outcomes.push_back(std::move(o));
    report.rolled_back = 1;
    report.first_broken_pass = "<input>";
    return report;
  }

  const bool bisecting = !verifying && bisect_env();
  std::unique_ptr<ir::SDFG> pristine = bisecting ? sdfg.clone() : nullptr;

  for (const Pass& p : passes_) {
    PassOutcome o;
    o.name = p.name;
    auto t0 = std::chrono::steady_clock::now();
    int64_t obs_t0 = obs::enabled() ? obs::now_ns() : 0;
    // The pass mutates a snapshot; the committed graph is untouched until
    // the snapshot passes the commit gate, so "rollback" is O(1) discard.
    std::shared_ptr<ir::SDFG> work(sdfg.clone().release());
    PassRun r = execute_pass(p, work, timeout_ms);
    o.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
    o.applied = r.applied;
    o.timed_out = r.timed_out;
    std::string why = r.error;
    if (why.empty() && r.applied)
      why = integrity_error(*work, verifying, baseline, &last_report_);
    if (!why.empty()) {
      o.rolled_back = true;
      o.error = std::move(why);
      ++report.rolled_back;
      if (report.first_broken_pass.empty()) report.first_broken_pass = p.name;
    } else if (r.applied) {
      sdfg.swap(*work);
      o.committed = true;
      ++report.committed;
    }
    if (obs::enabled()) {
      // Mirror the PassOutcome into the trace so sdfg-prof can report
      // which pass last rewrote each graph alongside the node timings.
      std::ostringstream a;
      a << "{\"pipeline\":\"" << diag::json_escape(name_)
        << "\",\"applied\":" << (o.applied ? "true" : "false")
        << ",\"committed\":" << (o.committed ? "true" : "false")
        << ",\"rolled_back\":" << (o.rolled_back ? "true" : "false") << "}";
      obs::complete("pass", p.name, obs_t0, obs::now_ns() - obs_t0, a.str());
    }
    report.outcomes.push_back(std::move(o));
  }

  // Without per-pass semantic verification a pass can corrupt the graph
  // in ways only the analyzer sees.  Under DACE_XF_BISECT, attribute the
  // corruption to the first breaking pass by replaying prefixes from the
  // pristine snapshot, then recover the best verified graph by re-running
  // with verification forced on (which rolls the culprit back).
  if (bisecting && report.first_broken_pass.empty()) {
    bool corrupt = false;
    analysis::AnalysisReport rep = analysis::analyze(sdfg);
    for (const auto& d : rep.diagnostics()) {
      if (d.severity != analysis::Severity::Error) continue;
      if (baseline.count(d.fingerprint())) continue;
      corrupt = true;
      break;
    }
    if (corrupt) {
      auto g = pristine->clone();
      for (const Pass& p : passes_) {
        try {
          if (!p.apply(*g)) continue;
        } catch (...) {
          continue;  // a throwing pass was already rolled back above
        }
        if (!integrity_error(*g, /*verifying=*/true, baseline, nullptr)
                 .empty()) {
          report.first_broken_pass = p.name;
          report.bisected = true;
          break;
        }
      }
      Pipeline repaired(*this);
      repaired.set_verify(true);
      PassReport fixed = repaired.run_transactional(*pristine);
      sdfg.swap(*pristine);
      report.committed = fixed.committed;
      report.rolled_back = fixed.rolled_back;
      report.outcomes = std::move(fixed.outcomes);
      if (report.first_broken_pass.empty())
        report.first_broken_pass = fixed.first_broken_pass;
    }
  }
  return report;
}

void rename_map_params(ir::State& st, int entry,
                       const std::vector<std::string>& new_params) {
  auto* me = st.node_as<ir::MapEntry>(entry);
  DACE_CHECK(me != nullptr, "rename_map_params: not a map entry");
  DACE_CHECK(me->params.size() == new_params.size(),
             "rename_map_params: rank mismatch");
  sym::SubstMap smap;
  std::map<std::string, ir::CodeExpr> cmap;
  bool any = false;
  for (size_t i = 0; i < new_params.size(); ++i) {
    if (me->params[i] == new_params[i]) continue;
    smap[me->params[i]] = sym::Expr::symbol(new_params[i]);
    cmap[me->params[i]] = ir::CodeExpr::symbol(new_params[i]);
    any = true;
  }
  if (!any) return;
  std::vector<int> scope = st.scope_nodes(entry);
  std::set<int> scope_set(scope.begin(), scope.end());
  scope_set.insert(entry);
  scope_set.insert(me->exit_node);
  for (auto& e : st.edges()) {
    // Inner edges: either endpoint inside the scope (incl. entry/exit
    // connectors on the inside).
    bool inner = scope_set.count(e.src) && scope_set.count(e.dst);
    if (inner && !e.memlet.empty()) e.memlet.subset = e.memlet.subset.subs(smap);
  }
  for (int id : scope) {
    if (auto* t = st.node_as<ir::Tasklet>(id)) {
      t->code = t->code.subs_symbols(cmap);
    } else if (auto* m = st.node_as<ir::MapEntry>(id)) {
      sym::Subset r = m->range;
      std::vector<sym::Range> rs;
      for (const auto& rr : r.ranges()) rs.push_back(rr.subs(smap));
      m->range = sym::Subset(rs);
    }
  }
  me->params = new_params;
}

bool is_identity_tasklet(const ir::Tasklet& t) {
  return t.code.op() == ir::CodeOp::Input && t.inputs.size() == 1;
}

std::vector<int> states_using(const ir::SDFG& sdfg, const std::string& name) {
  std::vector<int> out;
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    bool used = false;
    for (int nid : st.node_ids()) {
      if (const auto* a = st.node_as<ir::AccessNode>(nid)) {
        used |= a->data == name;
      }
    }
    for (const auto& e : st.edges()) used |= e.memlet.data == name;
    if (used) out.push_back(sid);
  }
  return out;
}

bool container_referenced(const ir::SDFG& sdfg, const std::string& name) {
  return !states_using(sdfg, name).empty();
}

}  // namespace dace::xf
