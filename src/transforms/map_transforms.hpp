// Map-scope restructuring transformations (Section 3.1 passes 1 and 3).
#pragma once

#include "transforms/pass.hpp"

namespace dace::xf {

/// Collapse one pair of perfectly nested maps into a multidimensional map
/// (increases parallelism; a by-product is larger GPU kernels).
bool map_collapse(ir::SDFG& sdfg);

/// Tile one parallel map whose only output is a WCR write to a scalar:
/// each tile accumulates privately in a register and commits once,
/// drastically reducing atomic updates (Section 3.1 pass 3).
bool tile_wcr_map(ir::SDFG& sdfg, int64_t tile_size = 1024);

/// Set every top-level map's schedule (CPU_Multicore / GPU_Device /
/// FPGA_Pipeline) and mark CPU maps for OpenMP collapse.
void set_toplevel_schedules(ir::SDFG& sdfg, ir::Schedule schedule,
                            bool omp_collapse);

}  // namespace dace::xf
