#include "transforms/loop_to_map.hpp"

#include <algorithm>

#include "analysis/absint.hpp"

namespace dace::xf {

using ir::AccessNode;
using ir::CodeExpr;
using ir::CodeOp;
using ir::Edge;
using ir::MapEntry;
using ir::MapExit;
using ir::Memlet;
using ir::NodeKind;
using ir::SDFG;
using ir::State;
using ir::Tasklet;
using sym::Expr;
using sym::Subset;

std::optional<Expr> code_to_sym(const CodeExpr& e) {
  // Shared with the analyses; lives next to to_code in ir/code_expr.cpp
  // (and now understands Div/Mod/Floor, so loops with such bounds are
  // analyzed instead of silently skipped).
  return ir::code_to_sym(e);
}

namespace {

/// A detected guard/body/increment loop.
struct Loop {
  int guard = -1, body = -1;
  size_t e_init = SIZE_MAX, e_body = SIZE_MAX, e_back = SIZE_MAX,
         e_exit = SIZE_MAX;  // interstate edge indices
  std::string var;
  Expr begin, end, step;
};

std::optional<Loop> detect_loop(const SDFG& sdfg, int guard) {
  const State& g = sdfg.state(guard);
  if (g.num_nodes() != 0) return std::nullopt;
  auto outs = sdfg.out_interstate(guard);
  auto ins = sdfg.in_interstate(guard);
  if (outs.size() != 2 || ins.size() != 2) return std::nullopt;
  const auto& edges = sdfg.interstate_edges();

  Loop L;
  L.guard = guard;
  // Identify the body edge: condition var < end.
  for (size_t oi : outs) {
    const auto& e = edges[oi];
    if (!e.condition.valid() || !e.assignments.empty()) return std::nullopt;
    if (e.condition.op() == CodeOp::Lt &&
        e.condition.args()[0].op() == CodeOp::Sym) {
      L.e_body = oi;
      L.body = e.dst;
      L.var = e.condition.args()[0].name();
      auto end = ir::code_to_sym(e.condition.args()[1]);
      if (!end) return std::nullopt;
      L.end = *end;
    } else {
      L.e_exit = oi;
    }
  }
  if (L.var.empty() || L.body == guard || L.e_exit == SIZE_MAX)
    return std::nullopt;
  // Init and back edges.
  bool have_init = false, have_back = false;
  for (size_t ii : ins) {
    const auto& e = edges[ii];
    if (e.src == L.body) {
      // Back edge: var = var + step.
      if (e.condition.valid() || e.assignments.size() != 1) return std::nullopt;
      if (e.assignments[0].first != L.var) return std::nullopt;
      Expr step = e.assignments[0].second - Expr::symbol(L.var);
      if (!step.free_symbols().empty() && !step.provably_positive())
        return std::nullopt;
      if (step.is_constant() && step.constant() <= 0) return std::nullopt;
      L.step = step;
      L.e_back = ii;
      have_back = true;
    } else {
      // Init edge: last assignment sets var = begin.
      bool found = false;
      for (const auto& [k, v] : e.assignments) {
        if (k == L.var) {
          L.begin = v;
          found = true;
        }
      }
      if (!found) return std::nullopt;
      L.e_init = ii;
      have_init = true;
    }
  }
  if (!have_init || !have_back) return std::nullopt;
  // Body: single state whose only outgoing interstate edge is the back
  // edge and only incoming is the body edge.
  if (sdfg.out_interstate(L.body).size() != 1 ||
      sdfg.in_interstate(L.body).size() != 1)
    return std::nullopt;
  // The loop variable must not be reassigned inside; body has no
  // interstate assignments by construction (single back edge checked).
  return L;
}

/// Widen a subset over all values of `var` in [begin, begin+iters*step).
/// Returns nullopt when a bound is not provably monotone in var.
std::optional<Subset> widen_over_var(const Subset& s, const std::string& var,
                                     const Expr& begin, const Expr& end,
                                     const Expr& step) {
  Expr last = begin + (sym::ceildiv(end - begin, step) - Expr(1)) * step;
  std::vector<sym::Range> rs;
  for (size_t d = 0; d < s.dims(); ++d) {
    const sym::Range& r = s.range(d);
    if (!r.begin.free_symbols().count(var) &&
        !r.end.free_symbols().count(var)) {
      rs.push_back(r);
      continue;
    }
    // Monotonicity probe on the begin expression.
    sym::SubstMap p0{{var, Expr(0)}}, p1{{var, Expr(1)}};
    Expr coef_b = r.begin.subs(p1) - r.begin.subs(p0);
    Expr coef_e = r.end.subs(p1) - r.end.subs(p0);
    sym::SubstMap lo{{var, begin}}, hi{{var, last}};
    if (coef_b.provably_nonnegative() && coef_e.provably_nonnegative()) {
      rs.emplace_back(r.begin.subs(lo), r.end.subs(hi));
    } else if (coef_b.provably_nonpositive() && coef_e.provably_nonpositive()) {
      rs.emplace_back(r.begin.subs(hi), r.end.subs(lo));
    } else {
      return std::nullopt;
    }
  }
  return Subset(std::move(rs));
}

/// Per-container read/write subsets of a state's top-level dataflow
/// (outer memlets on access-node edges).
struct BodySets {
  std::map<std::string, std::vector<Subset>> reads, writes;
  std::map<std::string, std::vector<size_t>> write_edges;  // edge indices
  bool simple = true;  // no intermediate arrays / unsupported nodes
};

BodySets analyze_body(const SDFG& sdfg, const State& st) {
  BodySets b;
  for (int id : st.node_ids()) {
    const ir::Node* n = st.node(id);
    if (n->kind == NodeKind::Access) {
      const auto* a = static_cast<const AccessNode*>(n);
      const ir::DataDesc& d = sdfg.array(a->data);
      bool scalar_transient = d.is_scalar() && d.transient;
      if (st.in_degree(id) > 0 && st.out_degree(id) > 0 &&
          !scalar_transient) {
        b.simple = false;  // intermediate array within the state
      }
      continue;
    }
    if (n->kind == NodeKind::Library || n->kind == NodeKind::NestedSDFG) {
      if (st.scope_of(id) == -1) b.simple = false;
    }
  }
  for (size_t ei = 0; ei < st.edges().size(); ++ei) {
    const Edge& e = st.edges()[ei];
    if (e.memlet.empty()) continue;
    if (const auto* a = st.node_as<const AccessNode>(e.src)) {
      if (a->data == e.memlet.data)
        b.reads[e.memlet.data].push_back(e.memlet.subset);
      if (e.memlet.dynamic) b.simple = false;
    }
    if (const auto* a = st.node_as<const AccessNode>(e.dst)) {
      if (a->data == e.memlet.data) {
        b.writes[e.memlet.data].push_back(e.memlet.subset);
        b.write_edges[e.memlet.data].push_back(ei);
        if (e.memlet.dynamic) b.simple = false;
      }
    }
  }
  return b;
}

/// Try to rewrite an accumulation map writing `data` into WCR form:
/// tasklet `out = in_read(data) + rest` becomes `out = rest` with a
/// WCR-sum write. Returns true on success.
bool rewrite_accumulation(SDFG& sdfg, State& st, const std::string& data) {
  (void)sdfg;
  // Find the writer tasklet(s) through a map exit.
  for (int tid : st.node_ids()) {
    auto* t = st.node_as<Tasklet>(tid);
    if (!t) continue;
    // Output edge writing `data` (via exit or access).
    size_t out_ei = SIZE_MAX;
    for (size_t ei = 0; ei < st.edges().size(); ++ei) {
      const Edge& e = st.edges()[ei];
      if (e.src == tid && e.memlet.data == data &&
          e.memlet.wcr == ir::WCR::None)
        out_ei = ei;
    }
    if (out_ei == SIZE_MAX) continue;
    const Subset w = st.edges()[out_ei].memlet.subset;
    // Code must be Add(Input(c), rest) or Add(rest, Input(c)) with c
    // reading `data` at the written element.
    if (t->code.op() != CodeOp::Add) return false;
    for (int side = 0; side < 2; ++side) {
      const CodeExpr cand = t->code.args()[side];  // copy: t->code mutates
      if (cand.op() != CodeOp::Input) continue;
      // Find the in-edge feeding this connector.
      size_t in_ei = SIZE_MAX;
      for (size_t ei = 0; ei < st.edges().size(); ++ei) {
        const Edge& e = st.edges()[ei];
        if (e.dst == tid && e.dst_conn == cand.name()) in_ei = ei;
      }
      if (in_ei == SIZE_MAX) continue;
      const Edge& ine = st.edges()[in_ei];
      if (ine.memlet.data != data || !ine.memlet.subset.equals(w)) continue;
      // The rest must not read `data` through other connectors.
      const CodeExpr rest = t->code.args()[1 - side];
      bool rest_reads = false;
      for (const auto& conn : rest.free_inputs()) {
        for (const auto* e : st.in_edges(tid)) {
          if (e->dst_conn == conn && e->memlet.data == data)
            rest_reads = true;
        }
      }
      if (rest_reads) continue;
      // Rewrite: drop the self-input, set WCR along the write path.
      int entry_src = ine.src;
      t->code = rest;
      t->inputs.erase(
          std::remove(t->inputs.begin(), t->inputs.end(), cand.name()),
          t->inputs.end());
      st.edges()[out_ei].memlet.wcr = ir::WCR::Sum;
      // Propagate WCR through the exit to the outer access node.
      if (const auto* mx = st.node_as<const MapExit>(st.edges()[out_ei].dst)) {
        (void)mx;
        int exit_id = st.edges()[out_ei].dst;
        for (auto& e : st.edges()) {
          if (e.src == exit_id && e.memlet.data == data)
            e.memlet.wcr = ir::WCR::Sum;
        }
      }
      st.remove_edge(in_ei);
      // Remove the entry connector / outer read edge if now unused.
      if (const auto* me = st.node_as<const MapEntry>(entry_src)) {
        (void)me;
        bool still_used = false;
        for (const auto& e : st.edges()) {
          if (e.src == entry_src && e.memlet.data == data) still_used = true;
        }
        if (!still_used) {
          // Drop outer edges feeding IN_<data> and orphaned access nodes.
          std::vector<int> dead_access;
          st.remove_edges_if([&](const Edge& e) {
            if (e.dst == entry_src && e.dst_conn == "IN_" + data) {
              dead_access.push_back(e.src);
              return true;
            }
            return false;
          });
          for (int aid : dead_access) {
            if (st.in_degree(aid) == 0 && st.out_degree(aid) == 0)
              st.remove_node(aid);
          }
        }
      }
      return true;
    }
    return false;
  }
  return false;
}

/// Enclose all top-level dataflow of `st` in a new map over `var`.
void enclose_in_map(SDFG& sdfg, State& st, const std::string& var,
                    const Expr& begin, const Expr& end, const Expr& step) {
  auto [entry, exit] = st.add_map(
      "loop_" + var, {var}, Subset({sym::Range(begin, end, step)}));
  std::set<std::string> in_conns, out_conns;
  std::vector<Edge> to_add;
  std::vector<size_t> to_remove;
  for (size_t ei = 0; ei < st.edges().size(); ++ei) {
    const Edge& e = st.edges()[ei];
    if (e.src == entry || e.dst == entry || e.src == exit || e.dst == exit)
      continue;
    const auto* asrc = st.node_as<const AccessNode>(e.src);
    const auto* adst = st.node_as<const AccessNode>(e.dst);
    // Only reroute edges between top-level access nodes and scope roots.
    if (asrc && st.in_degree(e.src) == 0 && !adst) {
      to_remove.push_back(ei);
      const ir::DataDesc& d = sdfg.array(asrc->data);
      if (!in_conns.count(asrc->data)) {
        in_conns.insert(asrc->data);
        auto widened = widen_over_var(e.memlet.subset, var, begin, end, step);
        Memlet outer(asrc->data,
                     widened ? *widened : Subset::full(d.shape));
        outer.dynamic = !widened.has_value();
        to_add.push_back(Edge{e.src, "", entry, "IN_" + asrc->data, outer});
      }
      to_add.push_back(Edge{entry, "OUT_" + asrc->data, e.dst, e.dst_conn,
                            e.memlet});
    } else if (adst && !asrc) {
      const ir::DataDesc& dd = sdfg.array(adst->data);
      // Intermediate scalar transients stay inside the new scope (they
      // become thread-private registers).
      if (dd.is_scalar() && dd.transient && st.out_degree(e.dst) > 0)
        continue;
      to_remove.push_back(ei);
      const ir::DataDesc& d = sdfg.array(adst->data);
      to_add.push_back(
          Edge{e.src, e.src_conn, exit, "IN_" + adst->data, e.memlet});
      if (!out_conns.count(adst->data)) {
        out_conns.insert(adst->data);
        auto widened = widen_over_var(e.memlet.subset, var, begin, end, step);
        Memlet outer(adst->data,
                     widened ? *widened : Subset::full(d.shape),
                     e.memlet.wcr);
        outer.dynamic = !widened.has_value();
        to_add.push_back(Edge{exit, "OUT_" + adst->data, e.dst, "", outer});
      }
    }
  }
  std::sort(to_remove.rbegin(), to_remove.rend());
  for (size_t ei : to_remove) st.remove_edge(ei);
  for (const auto& e : to_add)
    st.add_edge(e.src, e.src_conn, e.dst, e.dst_conn, e.memlet);
}

}  // namespace

bool loop_to_map(SDFG& sdfg) {
  for (int guard : sdfg.state_ids()) {
    auto L = detect_loop(sdfg, guard);
    if (!L) continue;
    State& body = sdfg.state(L->body);

    BodySets sets = analyze_body(sdfg, body);
    if (!sets.simple) continue;

    // Iteration-private scalars: scalar transients that are always
    // written before read within the body and referenced nowhere else are
    // privatized by the enclosing map (they become registers) and do not
    // constrain parallelism.
    auto privatizable = [&](const std::string& name) {
      const ir::DataDesc& d = sdfg.array(name);
      if (!d.is_scalar() || !d.transient) return false;
      for (int id : body.node_ids()) {
        const auto* a = body.node_as<const AccessNode>(id);
        if (a && a->data == name && body.in_degree(id) == 0) return false;
      }
      return states_using(sdfg, name).size() == 1;
    };

    // Parallelism check per container.
    bool parallel = true;
    std::vector<std::string> need_wcr;
    for (const auto& [name, writes] : sets.writes) {
      if (privatizable(name)) continue;
      // Writes across iterations must be disjoint:
      // W(var) vs W(var + d*step) with d >= 1.
      Expr shifted = Expr::symbol(L->var) + Expr::symbol("__l2m_d") * L->step;
      bool disjoint_iters = true;
      for (const auto& w : writes) {
        Subset w2 = w.subs({{L->var, shifted}});
        auto dj = Subset::disjoint(w, w2);
        if (!dj || !*dj) {
          // The purely syntactic test loses factored separations like
          // A[i*K : i*K+K] vs the d-shifted copy (distance K*d needs the
          // fact d >= 1).  Retry with the interval prover under d >= 1
          // plus the symbol ranges known at the body state.  DACE_ABSINT=0
          // disables the retry (seed-conservative behavior).
          namespace absint = analysis::absint;
          if (absint::mode() == absint::Mode::Off) {
            disjoint_iters = false;
          } else {
            absint::Env env = absint::SymbolRanges::compute(sdfg).at(L->body);
            env["__l2m_d"] = absint::Interval::at_least(Expr(int64_t{1}));
            auto dj2 = absint::proves_disjoint(w, w2, env);
            if (!dj2 || !*dj2) disjoint_iters = false;
          }
        }
      }
      bool rw_same = true;
      if (auto it = sets.reads.find(name); it != sets.reads.end()) {
        for (const auto& r : it->second) {
          bool matches_any = false;
          for (const auto& w : writes) matches_any |= r.equals(w);
          rw_same &= matches_any;
        }
      }
      if (disjoint_iters && rw_same) continue;
      if (!disjoint_iters && rw_same && sets.reads.count(name)) {
        // Accumulation candidate (read-modify-write of the same elements
        // in every iteration) -> WCR.
        need_wcr.push_back(name);
        continue;
      }
      parallel = false;
      break;
    }
    if (!parallel) continue;

    // Apply WCR rewrites (validated against the tasklet structure; bail
    // if any accumulation cannot be expressed as WCR).
    bool wcr_ok = true;
    for (const auto& name : need_wcr) {
      if (!rewrite_accumulation(sdfg, body, name)) {
        wcr_ok = false;
        break;
      }
    }
    if (!wcr_ok) continue;  // body was not modified on failure (first op)

    enclose_in_map(sdfg, body, L->var, L->begin, L->end, L->step);

    // Control-flow surgery: predecessor -> body -> exit target.
    auto& edges = sdfg.interstate_edges();
    int pred = edges[L->e_init].src;
    int exit_dst = edges[L->e_exit].dst;
    std::vector<std::pair<std::string, sym::Expr>> init_assign;
    for (const auto& [k, v] : edges[L->e_init].assignments) {
      if (k != L->var) init_assign.emplace_back(k, v);
    }
    CodeExpr init_cond = edges[L->e_init].condition;
    // Remove the four loop edges (indices shift; remove by identity).
    std::set<size_t> dead{L->e_init, L->e_body, L->e_back, L->e_exit};
    std::vector<ir::InterstateEdge> kept;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!dead.count(i)) kept.push_back(edges[i]);
    }
    edges = std::move(kept);
    sdfg.add_interstate_edge(pred, L->body, init_cond, init_assign);
    sdfg.add_interstate_edge(L->body, exit_dst);
    sdfg.remove_state(L->guard);
    return true;
  }
  return false;
}

}  // namespace dace::xf
