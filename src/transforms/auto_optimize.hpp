// The automatic optimization heuristics of Section 3.1 ("-O3").
//
// Pipeline: dataflow coarsening (simplify) -> map-scope cleanup
// (degenerate map removal, repeated LoopToMap, map collapsing) -> greedy
// subgraph fusion -> WCR map tiling -> transient allocation mitigation ->
// device-specific scheduling ({CPU,GPU,FPGA} specialization).
#pragma once

#include <optional>
#include <vector>

#include "ir/sdfg.hpp"
#include "transforms/pass.hpp"

namespace dace::xf {

struct AutoOptOptions {
  bool coarsen = true;          // dataflow coarsening (simplify)
  bool loop_to_map = true;      // map-scope cleanup: LoopToMap
  bool collapse = true;         // map-scope cleanup: MapCollapse
  bool fusion = true;           // greedy subgraph fusion
  bool tile_wcr = true;         // tile WCR maps
  bool transient_mitigation = true;
  int64_t wcr_tile_size = 1024;
  /// Run the semantic analyzer after every pass (Pipeline verify mode);
  /// unset = follow DACE_VERIFY_PASSES.
  std::optional<bool> verify;
  /// Extra passes appended after the standard ones, before device
  /// specialization (fault-injection hook for the pipeline tests and the
  /// differential fuzzer).
  std::vector<Pass> extra_passes;
  /// When set, receives the per-pass transactional report (which passes
  /// committed, which were rolled back and why, first broken pass).
  PassReport* report = nullptr;
};

/// Run the full heuristic pipeline for the given device.  The pipeline is
/// transactional (Pipeline::run_transactional): a pass that throws, hangs
/// past DACE_XF_PASS_TIMEOUT, or corrupts the graph is rolled back and
/// recorded, and the graph left in `sdfg` is the best verified one --
/// auto_optimize never fails because one transformation does.
void auto_optimize(ir::SDFG& sdfg, ir::DeviceType device,
                   const AutoOptOptions& opts = {});

}  // namespace dace::xf
