// The automatic optimization heuristics of Section 3.1 ("-O3").
//
// Pipeline: dataflow coarsening (simplify) -> map-scope cleanup
// (degenerate map removal, repeated LoopToMap, map collapsing) -> greedy
// subgraph fusion -> WCR map tiling -> transient allocation mitigation ->
// device-specific scheduling ({CPU,GPU,FPGA} specialization).
#pragma once

#include <optional>

#include "ir/sdfg.hpp"

namespace dace::xf {

struct AutoOptOptions {
  bool coarsen = true;          // dataflow coarsening (simplify)
  bool loop_to_map = true;      // map-scope cleanup: LoopToMap
  bool collapse = true;         // map-scope cleanup: MapCollapse
  bool fusion = true;           // greedy subgraph fusion
  bool tile_wcr = true;         // tile WCR maps
  bool transient_mitigation = true;
  int64_t wcr_tile_size = 1024;
  /// Run the semantic analyzer after every pass (Pipeline verify mode);
  /// unset = follow DACE_VERIFY_PASSES.
  std::optional<bool> verify;
};

/// Run the full heuristic pipeline for the given device.
void auto_optimize(ir::SDFG& sdfg, ir::DeviceType device,
                   const AutoOptOptions& opts = {});

}  // namespace dace::xf
