// Transformation framework (Section 2.4 / 3.1).
//
// Transformations match a subgraph pattern and, when safe (checked with
// symbolic set operations), rewrite the graph.  They only modify or remove
// elements, so repeated application terminates.  apply_repeated() runs a
// transformation to fixpoint, mirroring the paper's dataflow-coarsening
// pass; auto_optimize.hpp chains them into the -O3-equivalent pipeline.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/sdfg.hpp"

namespace dace::xf {

/// A transformation: scans the SDFG and applies itself at most once.
/// Returns true if the graph changed.
using Transformation = std::function<bool(ir::SDFG&)>;

/// Apply `t` until fixpoint; returns the number of applications.
int apply_repeated(ir::SDFG& sdfg, const Transformation& t,
                   int max_iterations = 10000);

// -- shared graph-surgery helpers -------------------------------------------

/// Rename map parameters of a scope: substitutes the symbols in all memlet
/// subsets and tasklet code inside the scope and updates the entry.
void rename_map_params(ir::State& st, int entry,
                       const std::vector<std::string>& new_params);

/// True if a tasklet is the identity function of its single input.
bool is_identity_tasklet(const ir::Tasklet& t);

/// All states (ids) in which a container is referenced by an access node
/// or memlet.
std::vector<int> states_using(const ir::SDFG& sdfg, const std::string& name);

/// True if `name` is referenced anywhere (access node, memlet, library
/// attribute) in the SDFG.
bool container_referenced(const ir::SDFG& sdfg, const std::string& name);

}  // namespace dace::xf
