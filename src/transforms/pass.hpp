// Transformation framework (Section 2.4 / 3.1).
//
// Transformations match a subgraph pattern and, when safe (checked with
// symbolic set operations), rewrite the graph.  They only modify or remove
// elements, so repeated application terminates.  apply_repeated() runs a
// transformation to fixpoint, mirroring the paper's dataflow-coarsening
// pass; auto_optimize.hpp chains them into the -O3-equivalent pipeline.
//
// Pipeline sequences named passes and, in verify mode (set_verify(true)
// or DACE_VERIFY_PASSES=1), re-validates the graph and runs the semantic
// analyzer (analysis/analysis.hpp) after every pass that changed it --
// the verify-after-every-transformation discipline of the paper's
// correctness story.  A pass that introduces a new semantic error
// (race, out-of-bounds memlet, uninitialized read) aborts the pipeline
// with a dace::Error naming the pass and the finding.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "ir/sdfg.hpp"

namespace dace::xf {

/// A transformation: scans the SDFG and applies itself at most once.
/// Returns true if the graph changed.
using Transformation = std::function<bool(ir::SDFG&)>;

/// Apply `t` until fixpoint; returns the number of applications.
int apply_repeated(ir::SDFG& sdfg, const Transformation& t,
                   int max_iterations = 10000);

/// A named pipeline stage.
struct Pass {
  std::string name;
  Transformation apply;
};

/// Outcome of one pass in a transactional pipeline run.
struct PassOutcome {
  std::string name;
  bool applied = false;      // the pass reported a change
  bool committed = false;    // the change was kept
  bool rolled_back = false;  // graph restored to the pre-pass snapshot
  bool timed_out = false;    // exceeded DACE_XF_PASS_TIMEOUT
  double ms = 0.0;           // wall-clock time of the pass body
  std::string error;         // why the pass was rolled back (empty if ok)
};

/// Report of a transactional pipeline run: one outcome per pass, plus the
/// name of the first pass proven to break the graph (filled directly when
/// a pass fails its own transaction, or by auto-bisection under
/// DACE_XF_BISECT=1 when corruption only surfaces later).
struct PassReport {
  std::vector<PassOutcome> outcomes;
  int committed = 0;
  int rolled_back = 0;
  bool bisected = false;            // first_broken_pass found by bisection
  std::string first_broken_pass;    // empty if every pass committed
  std::string pipeline;

  bool all_committed() const { return rolled_back == 0; }
  /// Human-readable per-pass table.
  std::string summary() const;
};

/// An ordered sequence of passes with optional verify-after-every-pass.
class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  /// Append a pass that runs once.
  Pipeline& add(const std::string& name, Transformation t);
  /// Append a pass that runs `t` to fixpoint (apply_repeated).
  Pipeline& add_fixpoint(const std::string& name, Transformation t);

  /// Force verify mode on or off (overrides the environment).
  void set_verify(bool v) { verify_ = v; }
  /// Effective verify mode: explicit setting, else DACE_VERIFY_PASSES.
  bool verify() const;

  const std::string& name() const { return name_; }
  const std::vector<Pass>& passes() const { return passes_; }

  /// Run all passes in order; returns how many changed the graph.  In
  /// verify mode the semantic findings present *before* the pipeline are
  /// taken as the baseline, and any pass whose application adds a new
  /// error-severity finding (or breaks structural validation) throws.
  int run(ir::SDFG& sdfg) const;

  /// Crash-safe variant: every pass executes against a deep-clone
  /// snapshot and is committed only if it survives structural validation
  /// and a serializer round-trip (plus the semantic analyzer in verify
  /// mode).  A pass that throws, corrupts the graph, or exceeds the
  /// per-pass timeout (DACE_XF_PASS_TIMEOUT, milliseconds) is rolled
  /// back and recorded in the report; the pipeline continues degraded
  /// with the remaining passes.  Never throws on pass failure -- the
  /// graph left in `sdfg` is always the best verified one.  With
  /// DACE_XF_BISECT=1, corruption that only surfaces at the end of a
  /// non-verifying run is attributed to the first breaking pass by
  /// bisection over pass prefixes.
  PassReport run_transactional(ir::SDFG& sdfg) const;

  /// Per-pass timeout in milliseconds from DACE_XF_PASS_TIMEOUT (0 = off).
  static int pass_timeout_ms();
  /// True if DACE_XF_BISECT is set to a truthy value.
  static bool bisect_env();

  /// Report of the last analysis performed by run() in verify mode
  /// (empty when verify is off).
  const analysis::AnalysisReport& last_report() const { return last_report_; }

 private:
  std::string name_;
  std::vector<Pass> passes_;
  std::optional<bool> verify_;
  mutable analysis::AnalysisReport last_report_;
};

// -- shared graph-surgery helpers -------------------------------------------

/// Rename map parameters of a scope: substitutes the symbols in all memlet
/// subsets and tasklet code inside the scope and updates the entry.
void rename_map_params(ir::State& st, int entry,
                       const std::vector<std::string>& new_params);

/// True if a tasklet is the identity function of its single input.
bool is_identity_tasklet(const ir::Tasklet& t);

/// All states (ids) in which a container is referenced by an access node
/// or memlet.
std::vector<int> states_using(const ir::SDFG& sdfg, const std::string& name);

/// True if `name` is referenced anywhere (access node, memlet, library
/// attribute) in the SDFG.
bool container_referenced(const ir::SDFG& sdfg, const std::string& name);

}  // namespace dace::xf
