#include "transforms/simplify.hpp"

#include <algorithm>

namespace dace::xf {

using ir::AccessNode;
using ir::Edge;
using ir::MapEntry;
using ir::MapExit;
using ir::Memlet;
using ir::NodeKind;
using ir::SDFG;
using ir::State;
using ir::Tasklet;

namespace {

/// Access-node roles of a container within a state.
struct ContainerRole {
  std::vector<int> sources;  // access nodes with in-degree 0 (read pre-state)
  std::vector<int> written;  // access nodes with in-edges (produced here)
  bool any_read = false;     // some access node has out-edges
};

std::map<std::string, ContainerRole> container_roles(const State& st) {
  std::map<std::string, ContainerRole> roles;
  for (int id : st.node_ids()) {
    const auto* a = st.node_as<const AccessNode>(id);
    if (!a) continue;
    ContainerRole& r = roles[a->data];
    if (st.in_degree(id) == 0) r.sources.push_back(id);
    if (st.in_degree(id) > 0) r.written.push_back(id);
    if (st.out_degree(id) > 0) r.any_read = true;
  }
  return roles;
}

}  // namespace

// ---------------------------------------------------------------------------
// State fusion
// ---------------------------------------------------------------------------

bool state_fusion(SDFG& sdfg) {
  for (size_t ei = 0; ei < sdfg.interstate_edges().size(); ++ei) {
    const ir::InterstateEdge e = sdfg.interstate_edges()[ei];
    if (e.src == e.dst) continue;
    if (e.condition.valid() || !e.assignments.empty()) continue;
    if (sdfg.out_interstate(e.src).size() != 1) continue;
    if (sdfg.in_interstate(e.dst).size() != 1) continue;
    State& s1 = sdfg.state(e.src);
    State& s2 = sdfg.state(e.dst);

    auto roles1 = container_roles(s1);
    auto roles2 = container_roles(s2);

    // Plan the access-node merges: every source access of s2 that reads a
    // container s1 wrote must merge with s1's unique final version.
    bool safe = true;
    // (s2 node id) -> (s1 node id) merges, pre-offset.
    std::map<int, int> planned_merges;
    for (const auto& [name, r2] : roles2) {
      auto it1 = roles1.find(name);
      if (it1 == roles1.end()) continue;
      const ContainerRole& r1 = it1->second;
      if (!r2.sources.empty() && !r1.written.empty()) {
        if (r1.written.size() != 1) {
          safe = false;
          break;
        }
        for (int src2 : r2.sources)
          planned_merges[src2] = r1.written.front();
      } else if (!r2.sources.empty() && !r1.sources.empty() &&
                 r1.written.empty()) {
        for (int src2 : r2.sources)
          planned_merges[src2] = r1.sources.front();
      }
    }
    if (!safe) continue;

    // Virtual merged graph: verify ordering hazards resolve to paths.
    // Node ids: s1 ids as-is, s2 ids + voffset, with planned merges
    // collapsing s2 sources onto s1 nodes.
    int voffset = 1000000;
    auto rm = [&](int s2_id) {
      auto it = planned_merges.find(s2_id);
      return it != planned_merges.end() ? it->second : s2_id + voffset;
    };
    std::vector<std::pair<int, int>> vedges;
    for (const auto& e2 : s1.edges()) vedges.emplace_back(e2.src, e2.dst);
    for (const auto& e2 : s2.edges())
      vedges.emplace_back(rm(e2.src), rm(e2.dst));
    auto vreach = [&](int a, int b) {
      if (a == b) return true;
      std::set<int> seen{a};
      std::vector<int> work{a};
      while (!work.empty()) {
        int id = work.back();
        work.pop_back();
        for (const auto& [u, v] : vedges) {
          if (u != id) continue;
          if (v == b) return true;
          if (seen.insert(v).second) work.push_back(v);
        }
      }
      return false;
    };
    for (const auto& [name, r2] : roles2) {
      if (!safe) break;
      auto it1 = roles1.find(name);
      if (it1 == roles1.end()) continue;
      const ContainerRole& r1 = it1->second;
      // Writers of this container contributed by s2 (non-merged nodes).
      std::vector<int> writers2;
      for (int w : r2.written) {
        if (!planned_merges.count(w)) writers2.push_back(rm(w));
      }
      if (writers2.empty()) continue;
      // WAR: every s1 consumer of the old value must precede each writer.
      for (int r : r1.sources) {
        for (const auto& e2 : s1.edges()) {
          if (e2.src != r) continue;
          for (int w : writers2) {
            if (!vreach(e2.dst, w)) safe = false;
          }
        }
      }
      // WAW: s1's final write must precede each new writer.
      for (int w1 : r1.written) {
        for (int w : writers2) {
          if (!vreach(w1, w)) safe = false;
        }
      }
    }
    if (!safe) continue;

    // Merge: absorb s2 into s1 and unify access nodes.
    int offset = s1.absorb(s2);
    for (const auto& [src2, target] : planned_merges) {
      s1.redirect_node(src2 + offset, target);
      s1.remove_node(src2 + offset);
    }
    // Control flow: s1 takes over s2's outgoing edges.
    for (auto& ie : sdfg.interstate_edges()) {
      if (ie.src == e.dst) ie.src = e.src;
    }
    s1.set_label(s1.label() + "+" + s2.label());
    sdfg.remove_state(e.dst);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Redundant copy removal
// ---------------------------------------------------------------------------

namespace {

/// Description of an identity-copy map: out[c + p] = in[p].
struct CopyPattern {
  int entry = -1, exit = -1, tasklet = -1;
  int in_access = -1, out_access = -1;
  std::string src, dst;
  sym::Subset dst_subset;  // outer write subset into dst
  // For each dst dim: the source dim it maps from (-1 = fixed index).
  std::vector<int> dim_from;
  std::vector<sym::Expr> dim_base;  // additive base per dst dim
};

std::optional<CopyPattern> match_copy_map(const SDFG& sdfg, const State& st,
                                          int entry) {
  const auto* me = st.node_as<const MapEntry>(entry);
  if (!me) return std::nullopt;
  std::vector<int> scope = st.scope_nodes(entry);
  if (scope.size() != 1) return std::nullopt;
  const auto* t = st.node_as<const Tasklet>(scope[0]);
  if (!t || !is_identity_tasklet(*t)) return std::nullopt;

  CopyPattern p;
  p.entry = entry;
  p.exit = me->exit_node;
  p.tasklet = scope[0];

  // Input side: access -> entry -> tasklet, reading src[p0, ..., pk].
  auto tin = st.in_edges(p.tasklet);
  std::vector<const Edge*> data_in;
  for (const auto* e : tin) {
    if (!e->memlet.empty()) data_in.push_back(e);
  }
  if (data_in.size() != 1 || data_in[0]->src != entry) return std::nullopt;
  const Memlet& min = data_in[0]->memlet;
  p.src = min.data;
  const ir::DataDesc& sd = sdfg.array(p.src);
  if (min.subset.dims() != me->params.size()) return std::nullopt;
  for (size_t d = 0; d < min.subset.dims(); ++d) {
    if (!min.subset.range(d).begin.equals(sym::Expr::symbol(me->params[d])))
      return std::nullopt;
    // The map must cover the whole source container.
    if (!me->range.range(d).begin.is_zero() ||
        !me->range.range(d).end.equals(sd.shape[d]) ||
        !me->range.range(d).step.is_one())
      return std::nullopt;
  }
  auto ein = st.in_edges(entry);
  if (ein.size() != 1) return std::nullopt;
  p.in_access = ein[0]->src;
  if (!st.node_as<const AccessNode>(p.in_access)) return std::nullopt;

  // Output side: tasklet -> exit -> access, writing dst[base_d (+ p_j)].
  auto tout = st.out_edges(p.tasklet);
  if (tout.size() != 1 || tout[0]->dst != p.exit) return std::nullopt;
  if (tout[0]->memlet.wcr != ir::WCR::None) return std::nullopt;
  const Memlet& mout = tout[0]->memlet;
  p.dst = mout.data;
  auto eout = st.out_edges(p.exit);
  if (eout.size() != 1) return std::nullopt;
  p.out_access = eout[0]->dst;
  if (!st.node_as<const AccessNode>(p.out_access)) return std::nullopt;
  p.dst_subset = eout[0]->memlet.subset;

  std::set<std::string> seen_params;
  for (size_t d = 0; d < mout.subset.dims(); ++d) {
    const sym::Expr& idx = mout.subset.range(d).begin;
    // Try idx = base + param for each parameter.
    int from = -1;
    sym::Expr base = idx;
    for (size_t j = 0; j < me->params.size(); ++j) {
      sym::Expr cand = idx - sym::Expr::symbol(me->params[j]);
      if (!cand.free_symbols().count(me->params[j])) {
        if (seen_params.count(me->params[j])) return std::nullopt;
        from = (int)j;
        base = cand;
        seen_params.insert(me->params[j]);
        break;
      }
    }
    if (from == -1) {
      // Fixed index: must not reference any parameter.
      for (const auto& prm : me->params) {
        if (idx.free_symbols().count(prm)) return std::nullopt;
      }
    }
    p.dim_from.push_back(from);
    p.dim_base.push_back(base);
  }
  // Every parameter must be used exactly once.
  if (seen_params.size() != me->params.size()) return std::nullopt;
  return p;
}

}  // namespace

bool redundant_copy_removal(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int entry : st.node_ids()) {
      auto pat = match_copy_map(sdfg, st, entry);
      if (!pat) continue;
      const std::string& tmp = pat->src;
      const ir::DataDesc& td = sdfg.array(tmp);
      if (!td.transient || td.lifetime == ir::Lifetime::Persistent) continue;
      // tmp must be used only in this state, written once by a producer
      // whose output we can redirect, and read only by the copy.
      if (states_using(sdfg, tmp).size() != 1) continue;
      if (st.in_degree(pat->in_access) != 1 ||
          st.out_degree(pat->in_access) != 1)
        continue;
      // Unique producer edge into the tmp access node.
      size_t pedge_id = st.in_edge_ids(pat->in_access)[0];
      Edge pedge = st.edges()[pedge_id];
      if (pedge.memlet.wcr != ir::WCR::None) continue;
      // The producer must write all of tmp.
      if (!pedge.memlet.subset.equals(sym::Subset::full(td.shape))) continue;
      int producer = pedge.src;
      // No other access node of tmp in this state.
      bool tmp_elsewhere = false;
      for (int nid : st.node_ids()) {
        const auto* a = st.node_as<const AccessNode>(nid);
        if (a && a->data == tmp && nid != pat->in_access) tmp_elsewhere = true;
      }
      if (tmp_elsewhere) continue;
      // Anti-dependency: every other reader of dst must be ordered before
      // the producer.
      bool order_ok = true;
      for (int nid : st.node_ids()) {
        const auto* a = st.node_as<const AccessNode>(nid);
        if (!a || a->data != pat->dst || nid == pat->out_access) continue;
        if (st.out_degree(nid) > 0 && !st.has_path(nid, producer))
          order_ok = false;
        if (st.in_degree(nid) > 0) order_ok = false;  // double write
      }
      if (!order_ok) continue;

      // Build the dim mapping: dst index = dim_base (+ tmp index).
      auto remap = [&](const sym::Subset& tmp_sub) {
        std::vector<sym::Range> rs;
        for (size_t d = 0; d < pat->dim_from.size(); ++d) {
          if (pat->dim_from[d] < 0) {
            rs.emplace_back(pat->dim_base[d], pat->dim_base[d] + sym::Expr(1));
          } else {
            const sym::Range& r = tmp_sub.range((size_t)pat->dim_from[d]);
            rs.emplace_back(pat->dim_base[d] + r.begin,
                            pat->dim_base[d] + r.end, r.step);
          }
        }
        return sym::Subset(rs);
      };

      // Redirect the producer's output to dst.
      st.edges()[pedge_id].memlet =
          Memlet(pat->dst, remap(pedge.memlet.subset));
      st.edges()[pedge_id].dst = pat->out_access;
      // If the producer is a map exit, rewrite inner memlets and the
      // connector names.
      if (auto* mx = st.node_as<MapExit>(producer)) {
        (void)mx;
        std::string in_conn = "IN_" + tmp, out_conn = "OUT_" + tmp;
        for (auto& e2 : st.edges()) {
          if (e2.dst == producer && e2.dst_conn == in_conn) {
            e2.dst_conn = "IN_" + pat->dst;
            e2.memlet = Memlet(pat->dst, remap(e2.memlet.subset),
                               e2.memlet.wcr);
          }
          if (e2.src == producer && e2.src_conn == out_conn)
            e2.src_conn = "OUT_" + pat->dst;
        }
        st.edges()[pedge_id].src_conn = "OUT_" + pat->dst;
      }

      // Delete the copy map and the tmp access node.
      st.remove_edges_if([&](const Edge& e2) {
        return e2.src == pat->in_access || e2.dst == pat->in_access ||
               e2.src == pat->entry || e2.dst == pat->entry ||
               e2.src == pat->tasklet || e2.dst == pat->tasklet ||
               (e2.src == pat->exit && e2.dst == pat->out_access);
      });
      st.remove_node(pat->in_access);
      st.remove_node(pat->entry);
      st.remove_node(pat->tasklet);
      st.remove_node(pat->exit);
      if (!container_referenced(sdfg, tmp)) sdfg.remove_array(tmp);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Dead state / dataflow elimination
// ---------------------------------------------------------------------------

bool dead_state_elimination(SDFG& sdfg) {
  std::set<int> reachable;
  std::vector<int> work{sdfg.start_state()};
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    if (!reachable.insert(id).second) continue;
    for (size_t ei : sdfg.out_interstate(id))
      work.push_back(sdfg.interstate_edges()[ei].dst);
  }
  bool changed = false;
  for (int sid : sdfg.state_ids()) {
    if (!reachable.count(sid)) {
      sdfg.remove_state(sid);
      changed = true;
    }
  }
  return changed;
}

bool dead_dataflow_elimination(SDFG& sdfg) {
  bool changed = false;
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      if (st.node(nid)->kind == NodeKind::Access && st.in_degree(nid) == 0 &&
          st.out_degree(nid) == 0) {
        st.remove_node(nid);
        changed = true;
      }
    }
  }
  std::vector<std::string> unused;
  for (const auto& [name, d] : sdfg.arrays()) {
    if (d.transient && !container_referenced(sdfg, name))
      unused.push_back(name);
  }
  for (const auto& name : unused) {
    sdfg.remove_array(name);
    changed = true;
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Nested SDFG inlining
// ---------------------------------------------------------------------------

bool inline_nested_sdfg(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      auto* nn = st.node_as<ir::NestedSDFGNode>(nid);
      if (!nn) continue;
      const SDFG& callee = *nn->sdfg;
      if (callee.num_states() != 1) continue;
      // Connector memlets must cover whole containers (simple argument
      // passing); otherwise subset composition would be required.
      bool simple = true;
      std::map<std::string, std::string> rename;  // inner -> outer container
      for (const auto* e : st.in_edges(nid)) {
        if (e->memlet.empty()) continue;
        const auto& od = sdfg.array(e->memlet.data);
        if (!e->memlet.subset.equals(sym::Subset::full(od.shape))) simple = false;
        rename[e->dst_conn] = e->memlet.data;
      }
      for (const auto* e : st.out_edges(nid)) {
        if (e->memlet.empty()) continue;
        const auto& od = sdfg.array(e->memlet.data);
        if (!e->memlet.subset.equals(sym::Subset::full(od.shape))) simple = false;
        rename[e->src_conn] = e->memlet.data;
      }
      if (!simple) continue;
      if (!nn->symbol_mapping.empty()) continue;  // keep it simple

      auto inner = callee.clone();
      int inner_sid = inner->state_ids()[0];
      State& ist = inner->state(inner_sid);
      // Import callee transients with fresh names.
      for (const auto& [iname, idesc] : inner->arrays()) {
        if (!rename.count(iname)) {
          DACE_CHECK(idesc.transient, "inline: unbound callee container ",
                     iname);
          std::string nname = sdfg.unique_name("__inl_" + iname);
          ir::DataDesc nd = idesc;
          nd.name = nname;
          // add manually to keep descriptor attributes
          sdfg.add_array(nname, nd.dtype, nd.shape, true) = nd;
          rename[iname] = nname;
        }
      }
      // Rewrite inner references.
      for (int inid : ist.node_ids()) {
        if (auto* a = ist.node_as<AccessNode>(inid)) {
          a->data = rename.at(a->data);
        }
      }
      for (auto& e2 : ist.edges()) {
        if (!e2.memlet.empty()) e2.memlet.data = rename.at(e2.memlet.data);
      }
      // Splice: absorb the inner state; connect source/sink accesses of
      // shared containers with the outer edges' endpoints.
      int offset = st.absorb(ist);
      // Outer edges into the nested node: connect the producer to the
      // matching inner source access (merge nodes).
      std::vector<std::pair<int, int>> merges;  // (inner node, outer node)
      for (const auto* e : st.in_edges(nid)) {
        if (e->memlet.empty()) continue;
        // Find inner source access of that container.
        (void)e;
      }
      // Simpler: redirect outer edges to inner access nodes directly.
      std::vector<Edge> outer_in, outer_out;
      for (const auto* e : st.in_edges(nid)) outer_in.push_back(*e);
      for (const auto* e : st.out_edges(nid)) outer_out.push_back(*e);
      st.remove_edges_if(
          [&](const Edge& e2) { return e2.src == nid || e2.dst == nid; });
      st.remove_node(nid);
      auto find_inner_access = [&](const std::string& data, bool source) {
        for (int inid : st.node_ids()) {
          if (inid < offset) continue;
          const auto* a = st.node_as<const AccessNode>(inid);
          if (!a || a->data != data) continue;
          if (source && st.in_degree(inid) == 0) return inid;
          if (!source && st.in_degree(inid) > 0) return inid;
        }
        return -1;
      };
      for (const auto& e : outer_in) {
        if (e.memlet.empty()) continue;
        int ia = find_inner_access(e.memlet.data, /*source=*/true);
        if (ia >= 0) {
          // Merge outer producer access with inner source.
          st.redirect_node(ia, e.src);
          st.remove_node(ia);
        }
      }
      for (const auto& e : outer_out) {
        if (e.memlet.empty()) continue;
        int ia = find_inner_access(e.memlet.data, /*source=*/false);
        if (ia >= 0) {
          st.redirect_node(ia, e.dst);
          st.remove_node(ia);
        }
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Trivial map elimination
// ---------------------------------------------------------------------------

bool trivial_map_elimination(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int entry : st.node_ids()) {
      auto* me = st.node_as<MapEntry>(entry);
      if (!me) continue;
      bool all_unit = true;
      for (const auto& r : me->range.ranges()) all_unit &= r.size().is_one();
      if (!all_unit) continue;
      if (st.scope_of(entry) != -1) continue;  // handle top-level only
      // Substitute parameters by their single value.
      sym::SubstMap smap;
      std::map<std::string, ir::CodeExpr> cmap;
      for (size_t d = 0; d < me->params.size(); ++d) {
        smap[me->params[d]] = me->range.range(d).begin;
        cmap[me->params[d]] = ir::to_code(me->range.range(d).begin);
      }
      std::vector<int> scope = st.scope_nodes(entry);
      for (int id : scope) {
        if (auto* t = st.node_as<Tasklet>(id)) t->code = t->code.subs_symbols(cmap);
        if (auto* m = st.node_as<MapEntry>(id)) {
          std::vector<sym::Range> rs;
          for (const auto& r : m->range.ranges()) rs.push_back(r.subs(smap));
          m->range = sym::Subset(rs);
        }
      }
      int exit = me->exit_node;
      std::set<int> scope_set(scope.begin(), scope.end());
      for (auto& e : st.edges()) {
        bool touches = scope_set.count(e.src) || scope_set.count(e.dst) ||
                       e.src == entry || e.dst == entry || e.src == exit ||
                       e.dst == exit;
        if (touches && !e.memlet.empty())
          e.memlet.subset = e.memlet.subset.subs(smap);
      }
      // Bypass a gate node: (x -> gate IN_c) + (gate OUT_c -> y) becomes
      // (x -> y).  For the entry, the kept memlet is the inside (element)
      // one; for the exit it is also the inside one (which carries WCR).
      auto bypass = [&](int gate, bool keep_incoming_memlet) {
        std::vector<Edge> incoming, outgoing;
        for (const auto& e : st.edges()) {
          if (e.dst == gate) incoming.push_back(e);
          if (e.src == gate) outgoing.push_back(e);
        }
        st.remove_edges_if([&](const Edge& e) {
          return e.src == gate || e.dst == gate;
        });
        for (const auto& in : incoming) {
          if (in.dst_conn.rfind("IN_", 0) != 0) continue;  // ordering edge
          std::string want = "OUT_" + in.dst_conn.substr(3);
          for (const auto& out : outgoing) {
            if (out.src_conn != want) continue;
            Edge ne;
            ne.src = in.src;
            ne.src_conn = in.src_conn;
            ne.dst = out.dst;
            ne.dst_conn = out.dst_conn;
            ne.memlet = keep_incoming_memlet ? in.memlet : out.memlet;
            st.edges().push_back(ne);
          }
        }
      };
      bypass(entry, /*keep_incoming_memlet=*/false);
      bypass(exit, /*keep_incoming_memlet=*/true);
      st.remove_node(entry);
      st.remove_node(exit);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

void simplify(ir::SDFG& sdfg) {
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    changed |= apply_repeated(sdfg, inline_nested_sdfg) > 0;
    changed |= apply_repeated(sdfg, state_fusion) > 0;
    changed |= apply_repeated(sdfg, redundant_copy_removal) > 0;
    changed |= dead_state_elimination(sdfg);
    changed |= dead_dataflow_elimination(sdfg);
  }
  sdfg.validate();
}

}  // namespace dace::xf
