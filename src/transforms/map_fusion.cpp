#include "transforms/map_fusion.hpp"

#include <algorithm>

namespace dace::xf {

using ir::AccessNode;
using ir::Edge;
using ir::MapEntry;
using ir::MapExit;
using ir::Memlet;
using ir::NodeKind;
using ir::SDFG;
using ir::State;
using ir::Tasklet;

namespace {

struct Candidate {
  int exit1, access, entry2;
  std::string tmp;
};

/// Ranges equal dimension-wise (begin, end, step).
bool ranges_equal(const sym::Subset& a, const sym::Subset& b) {
  return a.equals(b);
}

std::vector<Candidate> find_candidates(const SDFG& sdfg, const State& st) {
  std::vector<Candidate> out_list;
  for (int aid : st.node_ids()) {
    const auto* acc = st.node_as<const AccessNode>(aid);
    if (!acc) continue;
    const ir::DataDesc& d = sdfg.array(acc->data);
    if (!d.transient || d.is_stream || d.lifetime == ir::Lifetime::Persistent)
      continue;
    auto in = st.in_edges(aid);
    auto out = st.out_edges(aid);
    if (in.size() != 1 || out.empty()) continue;
    const auto* mx = st.node_as<const MapExit>(in[0]->src);
    if (!mx || in[0]->memlet.wcr != ir::WCR::None) continue;
    // All consumers must be the same map entry.
    int entry2 = out[0]->dst;
    const auto* me2 = st.node_as<const MapEntry>(entry2);
    if (!me2) continue;
    bool same = true;
    for (const auto* e : out) same &= e->dst == entry2;
    if (!same) continue;
    // Top-level scopes only.
    if (st.scope_of(mx->entry_node) != -1 || st.scope_of(entry2) != -1)
      continue;
    // tmp used nowhere else.
    if (states_using(sdfg, acc->data).size() != 1) continue;
    bool elsewhere = false;
    for (int nid : st.node_ids()) {
      const auto* other = st.node_as<const AccessNode>(nid);
      if (other && nid != aid && other->data == acc->data) elsewhere = true;
    }
    if (elsewhere) continue;
    out_list.push_back(Candidate{in[0]->src, aid, entry2, acc->data});
  }
  return out_list;
}

}  // namespace

bool map_fusion(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (const Candidate& c : find_candidates(sdfg, st)) {
      auto* mx1 = st.node_as<MapExit>(c.exit1);
      int entry1 = mx1->entry_node;
      auto* me1 = st.node_as<MapEntry>(entry1);
      auto* me2 = st.node_as<MapEntry>(c.entry2);
      int exit2 = me2->exit_node;

      bool ok = me1->params.size() == me2->params.size();
      // Rename m2's params to m1's (through fresh names to avoid clashes)
      // on a trial basis is destructive; instead compare ranges after
      // positional substitution.
      sym::SubstMap p2to1;
      std::map<std::string, ir::CodeExpr> p2to1c;
      if (ok) {
        for (size_t i = 0; i < me1->params.size(); ++i) {
          if (me2->params[i] != me1->params[i]) {
            p2to1[me2->params[i]] = sym::Expr::symbol(me1->params[i]);
            p2to1c[me2->params[i]] = ir::CodeExpr::symbol(me1->params[i]);
          }
        }
        sym::Subset r2 = me2->range;
        std::vector<sym::Range> rs;
        for (const auto& r : r2.ranges()) rs.push_back(r.subs(p2to1));
        ok = ranges_equal(me1->range, sym::Subset(rs));
      }

      // Producer: the unique inner edge into exit1's IN_tmp.
      int producer = -1;
      sym::Subset prod_elem;
      if (ok) {
        int count = 0;
        for (const auto* e : st.in_edges(c.exit1)) {
          if (e->dst_conn == "IN_" + c.tmp) {
            ++count;
            producer = e->src;
            prod_elem = e->memlet.subset;
            ok &= e->memlet.wcr == ir::WCR::None;
          }
        }
        ok &= count == 1 && producer >= 0 &&
              st.node(producer)->kind == NodeKind::Tasklet;
      }

      // Consumers: inner edges entry2 OUT_tmp -> tasklet must read the
      // produced element (after renaming).
      std::vector<size_t> consumer_edges;
      if (ok) {
        for (size_t ei = 0; ei < st.edges().size(); ++ei) {
          const Edge& e = st.edges()[ei];
          if (e.src == c.entry2 && e.src_conn == "OUT_" + c.tmp) {
            if (st.node(e.dst)->kind != NodeKind::Tasklet) {
              ok = false;
              break;
            }
            sym::Subset read = e.memlet.subset.subs(p2to1);
            if (!read.equals(prod_elem)) {
              ok = false;
              break;
            }
            consumer_edges.push_back(ei);
          }
        }
        ok &= !consumer_edges.empty();
      }

      // Cross-container hazards: containers written by m2 that m1 reads
      // must be accessed at identical per-iteration elements; containers
      // written by both are rejected.
      if (ok) {
        std::map<std::string, std::vector<sym::Subset>> m1_reads, m1_writes,
            m2_writes;
        for (const auto* e : st.out_edges(entry1)) {
          if (!e->memlet.empty()) m1_reads[e->memlet.data].push_back(e->memlet.subset);
        }
        for (const auto* e : st.in_edges(c.exit1)) {
          if (!e->memlet.empty()) m1_writes[e->memlet.data].push_back(e->memlet.subset);
        }
        for (const auto* e : st.in_edges(exit2)) {
          if (!e->memlet.empty())
            m2_writes[e->memlet.data].push_back(e->memlet.subset.subs(p2to1));
        }
        for (const auto& [name, writes] : m2_writes) {
          if (name == c.tmp) continue;
          if (m1_writes.count(name)) {
            ok = false;
            break;
          }
          if (auto it = m1_reads.find(name); it != m1_reads.end()) {
            for (const auto& w : writes) {
              for (const auto& r : it->second) {
                if (!w.equals(r)) ok = false;
              }
            }
          }
        }
      }

      if (!ok) continue;  // try the next candidate

      // ---- Apply ----
      // 1. Rename m2 params for real.
      rename_map_params(st, c.entry2, me1->params);
      // 2. Remove producer -> exit1 edge and exit1 -> access(tmp) edge.
      st.remove_edges_if([&](const Edge& e) {
        return (e.src == producer && e.dst == c.exit1 &&
                e.dst_conn == "IN_" + c.tmp) ||
               (e.src == c.exit1 && e.dst == c.access) ||
               (e.src == c.access && e.dst == c.entry2);
      });
      // 3. Rewire consumer edges: producer tasklet feeds them directly.
      //    (collect target conns first; indices shift after removal)
      std::vector<std::pair<int, std::string>> targets;
      for (const auto& e : st.edges()) {
        if (e.src == c.entry2 && e.src_conn == "OUT_" + c.tmp)
          targets.emplace_back(e.dst, e.dst_conn);
      }
      st.remove_edges_if([&](const Edge& e) {
        return e.src == c.entry2 && e.src_conn == "OUT_" + c.tmp;
      });
      for (const auto& [dst, conn] : targets) {
        st.add_edge(producer, "__out", dst, conn, Memlet());
      }
      // 4. Re-route m2's other inputs through entry1.
      for (auto& e : st.edges()) {
        if (e.dst == c.entry2) e.dst = entry1;
        if (e.src == c.entry2) e.src = entry1;
        if (e.dst == exit2) e.dst = c.exit1;
        if (e.src == exit2) e.src = c.exit1;
      }
      // Deduplicate identical outer input edges (same src access node and
      // connector).
      {
        std::set<std::string> seen;
        std::vector<Edge> kept;
        for (const auto& e : st.edges()) {
          if (e.dst == entry1 && !e.dst_conn.empty()) {
            std::string key = std::to_string(e.src) + "|" + e.dst_conn + "|" +
                              e.src_conn;
            if (!seen.insert(key).second) continue;
          }
          kept.push_back(e);
        }
        st.edges() = std::move(kept);
      }
      st.remove_node(c.access);
      st.remove_node(c.entry2);
      st.remove_node(exit2);
      if (!container_referenced(sdfg, c.tmp)) sdfg.remove_array(c.tmp);
      return true;
    }
  }
  return false;
}

}  // namespace dace::xf
