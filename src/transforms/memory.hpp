// Transient allocation mitigation (Section 3.1 pass 4).
#pragma once

#include "transforms/pass.hpp"

namespace dace::xf {

/// Move constant-sized small transients to the stack and make transients
/// whose size depends only on input symbols persistent (allocated once
/// per SDFG initialization), nearly eliminating dynamic allocation in the
/// steady state.
bool mitigate_transient_allocation(ir::SDFG& sdfg,
                                   int64_t stack_limit_elems = 256);

}  // namespace dace::xf
