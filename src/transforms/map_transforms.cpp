#include "transforms/map_transforms.hpp"

#include <algorithm>

namespace dace::xf {

using ir::AccessNode;
using ir::Edge;
using ir::MapEntry;
using ir::MapExit;
using ir::Memlet;
using ir::NodeKind;
using ir::SDFG;
using ir::State;
using ir::Tasklet;
using sym::Expr;
using sym::Subset;

// ---------------------------------------------------------------------------
// MapCollapse
// ---------------------------------------------------------------------------

bool map_collapse(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int outer : st.node_ids()) {
      auto* m1 = st.node_as<MapEntry>(outer);
      if (!m1) continue;
      // Direct children must be exactly one nested map (entry + exit).
      std::vector<int> scope = st.scope_nodes(outer);
      int inner = -1;
      bool clean = true;
      for (int id : scope) {
        if (st.scope_of(id) != outer) continue;
        const ir::Node* n = st.node(id);
        if (n->kind == NodeKind::MapEntry) {
          if (inner != -1) clean = false;
          inner = id;
        } else if (n->kind != NodeKind::MapExit) {
          clean = false;
        }
      }
      if (!clean || inner < 0) continue;
      auto* m2 = st.node_as<MapEntry>(inner);
      // Inner range must not depend on outer parameters (rectangular).
      bool rect = true;
      for (const auto& r : m2->range.ranges()) {
        std::set<std::string> fs;
        r.begin.free_symbols(fs);
        r.end.free_symbols(fs);
        r.step.free_symbols(fs);
        for (const auto& p : m1->params) rect &= !fs.count(p);
      }
      if (!rect) continue;
      int exit1 = m1->exit_node;
      int exit2 = m2->exit_node;

      // Parameter name collisions: rename the inner map's params first.
      {
        std::set<std::string> outer_params(m1->params.begin(),
                                           m1->params.end());
        bool collide = false;
        for (const auto& p : m2->params) collide |= outer_params.count(p) > 0;
        if (collide) {
          std::vector<std::string> fresh;
          for (size_t i = 0; i < m2->params.size(); ++i) {
            std::string c;
            int k = 0;
            do {
              c = "__c" + std::to_string(k++) + "_" + m2->params[i];
            } while (outer_params.count(c));
            fresh.push_back(c);
          }
          rename_map_params(st, inner, fresh);
        }
      }

      // Merge parameters and ranges into m1.
      std::vector<sym::Range> rs = m1->range.ranges();
      for (const auto& r : m2->range.ranges()) rs.push_back(r);
      for (const auto& p : m2->params) m1->params.push_back(p);
      m1->range = Subset(rs);

      // Drop the pass-through edges m1 -> m2 and exit2 -> exit1; then
      // redirect m2's inner edges to m1 (and exit2's to exit1).
      st.remove_edges_if([&](const Edge& e) {
        return (e.src == outer && e.dst == inner) ||
               (e.src == exit2 && e.dst == exit1);
      });
      for (auto& e : st.edges()) {
        if (e.src == inner) e.src = outer;
        if (e.dst == inner) e.dst = outer;
        if (e.src == exit2) e.src = exit1;
        if (e.dst == exit2) e.dst = exit1;
      }
      st.remove_node(inner);
      st.remove_node(exit2);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tile WCR maps (scalar accumulation targets)
// ---------------------------------------------------------------------------

bool tile_wcr_map(SDFG& sdfg, int64_t tile_size) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int entry : st.node_ids()) {
      auto* me = st.node_as<MapEntry>(entry);
      if (!me || st.scope_of(entry) != -1) continue;
      if (me->params.empty()) continue;
      int exit = me->exit_node;
      // All output edges of the exit must be WCR-sum writes to scalars.
      std::vector<const Edge*> outs = st.out_edges(exit);
      if (outs.empty()) continue;
      bool all_scalar_wcr = true;
      for (const auto* e : outs) {
        const ir::DataDesc& d = sdfg.array(e->memlet.data);
        all_scalar_wcr &= d.is_scalar() && e->memlet.wcr != ir::WCR::None;
      }
      if (!all_scalar_wcr) continue;
      // Already tiled? Heuristic: skip maps whose first param is a tile.
      if (me->params[0].rfind("__tile_", 0) == 0) continue;
      // The outer dimension must be a unit-step range.
      const sym::Range& r0 = me->range.range(0);
      if (!r0.step.is_one()) continue;

      // Build: tile map [t: begin .. end : T] around the existing map,
      // whose dim-0 range becomes [t, min(t+T, end)).
      std::string tparam = "__tile_" + me->params[0];
      Expr T((int64_t)tile_size);
      auto [tentry, texit] = st.add_map(
          me->name + "_tiled", {tparam},
          Subset({sym::Range(r0.begin, r0.end, T)}));
      auto* tme = st.node_as<MapEntry>(tentry);
      tme->schedule = me->schedule;
      me->schedule = ir::Schedule::Sequential;
      me->range.range(0) = sym::Range(
          Expr::symbol(tparam), sym::min(Expr::symbol(tparam) + T, r0.end));

      // Per WCR output: private scalar transient accumulator.
      struct Out {
        Edge inner;   // tasklet -> exit edge
        Edge outer;   // exit -> access edge
      };
      // Collect and rewrite.
      std::vector<Edge> outer_edges;
      for (const auto* e : outs) outer_edges.push_back(*e);

      // Route map inputs through the tile map.
      for (auto& e : st.edges()) {
        if (e.dst == entry && !e.dst_conn.empty()) {
          // access -> entry becomes access -> tentry; new edge added below.
        }
      }
      std::vector<Edge> in_edges_copy;
      for (const auto* e : st.in_edges(entry)) in_edges_copy.push_back(*e);
      st.remove_edges_if([&](const Edge& e) { return e.dst == entry; });
      for (const auto& e : in_edges_copy) {
        st.add_edge(e.src, e.src_conn, tentry, e.dst_conn, e.memlet);
        st.add_edge(tentry, e.dst_conn.empty()
                                ? ""
                                : "OUT_" + e.dst_conn.substr(3),
                    entry, e.dst_conn, e.memlet);
      }

      // For each scalar WCR output: acc init tasklet + register WCR +
      // single flush per tile.
      st.remove_edges_if([&](const Edge& e) {
        for (const auto& oe : outer_edges) {
          if (e.src == exit && e.dst == oe.dst &&
              e.memlet.data == oe.memlet.data)
            return true;
        }
        return false;
      });
      for (const auto& oe : outer_edges) {
        const std::string& data = oe.memlet.data;
        std::string accname = sdfg.unique_name("__acc_" + data);
        sdfg.add_scalar(accname, sdfg.array(data).dtype, /*transient=*/true);
        double identity = oe.memlet.wcr == ir::WCR::Prod ? 1.0 : 0.0;
        DACE_CHECK(oe.memlet.wcr == ir::WCR::Sum ||
                       oe.memlet.wcr == ir::WCR::Prod,
                   "tile_wcr: min/max tiling not supported");
        int init = st.add_tasklet("init_" + accname, {},
                                  ir::CodeExpr::constant(identity));
        int acc_access = st.add_access(accname);
        st.add_edge(tentry, "", init, "", Memlet());
        st.add_edge(init, "__out", acc_access, "", Memlet(accname, Subset{}));
        // Order the inner map after the accumulator init.
        st.add_edge(acc_access, "", entry, "", Memlet());
        // Rewrite inner WCR edges targeting `data` to write the
        // accumulator instead.
        for (auto& e : st.edges()) {
          if (e.dst == exit && e.memlet.data == data) {
            e.memlet = Memlet(accname, Subset{}, e.memlet.wcr);
          }
        }
        // exit -> acc access #2 -> flush tasklet -> texit -> outer access.
        int acc_access2 = st.add_access(accname);
        st.add_edge(exit, "OUT_" + data, acc_access2, "",
                    Memlet(accname, Subset{}, oe.memlet.wcr));
        int flush = st.add_tasklet("flush_" + accname, {"__acc"},
                                   ir::CodeExpr::input("__acc"));
        st.add_edge(acc_access2, "", flush, "__acc",
                    Memlet(accname, Subset{}));
        st.add_edge(flush, "__out", texit, "IN_" + data,
                    Memlet(data, oe.memlet.subset, oe.memlet.wcr));
        st.add_edge(texit, "OUT_" + data, oe.dst, "",
                    Memlet(data, oe.memlet.subset, oe.memlet.wcr));
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

void set_toplevel_schedules(SDFG& sdfg, ir::Schedule schedule,
                            bool omp_collapse) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    for (int id : st.node_ids()) {
      auto* me = st.node_as<MapEntry>(id);
      if (!me || st.scope_of(id) != -1) continue;
      me->schedule = schedule;
      me->omp_collapse = omp_collapse && me->params.size() > 1;
    }
  }
}

}  // namespace dace::xf
