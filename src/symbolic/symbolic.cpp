#include "symbolic/symbolic.hpp"

#include <algorithm>
#include <cmath>

namespace dace::sym {
namespace {

using detail::Node;
using detail::NodePtr;

NodePtr make_const(int64_t v) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Const;
  n->value = v;
  return n;
}

NodePtr make_symbol(const std::string& name) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Symbol;
  n->name = name;
  return n;
}

NodePtr make_nary(ExprKind k, std::vector<NodePtr> args) {
  auto n = std::make_shared<Node>();
  n->kind = k;
  n->args = std::move(args);
  return n;
}

// Python-style floor division and modulo (result of % has divisor's sign),
// matching the slicing semantics the frontend needs.
int64_t floordiv_i64(int64_t a, int64_t b) {
  DACE_CHECK(b != 0, "symbolic: division by zero");
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t mod_i64(int64_t a, int64_t b) { return a - floordiv_i64(a, b) * b; }

// ---------------------------------------------------------------------------
// Canonicalization: polynomial normal form over atoms.
// ---------------------------------------------------------------------------

std::string node_key(const NodePtr& n);

// Monomial: sorted (atom-key, power) pairs. Empty = constant monomial.
using Mono = std::vector<std::pair<std::string, int>>;
// Polynomial: monomial -> integer coefficient.
using Poly = std::map<Mono, int64_t>;
// Registry of atom nodes by key, to rebuild nodes from polynomials.
using AtomReg = std::map<std::string, NodePtr>;

void poly_add_term(Poly& p, const Mono& m, int64_t coef) {
  if (coef == 0) return;
  auto [it, inserted] = p.emplace(m, coef);
  if (!inserted) {
    it->second += coef;
    if (it->second == 0) p.erase(it);
  }
}

Poly poly_mul(const Poly& a, const Poly& b) {
  Poly out;
  for (const auto& [ma, ca] : a) {
    for (const auto& [mb, cb] : b) {
      // Merge the two sorted monomials.
      Mono m;
      m.reserve(ma.size() + mb.size());
      auto ia = ma.begin();
      auto ib = mb.begin();
      while (ia != ma.end() || ib != mb.end()) {
        if (ib == mb.end() || (ia != ma.end() && ia->first < ib->first)) {
          m.push_back(*ia++);
        } else if (ia == ma.end() || ib->first < ia->first) {
          m.push_back(*ib++);
        } else {
          m.emplace_back(ia->first, ia->second + ib->second);
          ++ia;
          ++ib;
        }
      }
      poly_add_term(out, m, ca * cb);
    }
  }
  return out;
}

NodePtr canonicalize(const NodePtr& n);
Poly to_poly(const NodePtr& n, AtomReg& atoms);

// Wrap an already-canonical atom node into a single-term polynomial.
Poly atom_poly(NodePtr atom, AtomReg& atoms) {
  std::string key = node_key(atom);
  atoms.emplace(key, std::move(atom));
  Poly p;
  poly_add_term(p, Mono{{key, 1}}, 1);
  return p;
}

Poly to_poly(const NodePtr& n, AtomReg& atoms) {
  switch (n->kind) {
    case ExprKind::Const: {
      Poly p;
      poly_add_term(p, Mono{}, n->value);
      return p;
    }
    case ExprKind::Symbol:
      return atom_poly(n, atoms);
    case ExprKind::Add: {
      Poly p;
      for (const auto& a : n->args) {
        Poly q = to_poly(a, atoms);
        for (const auto& [m, c] : q) poly_add_term(p, m, c);
      }
      return p;
    }
    case ExprKind::Mul: {
      Poly p;
      poly_add_term(p, Mono{}, 1);
      for (const auto& a : n->args) p = poly_mul(p, to_poly(a, atoms));
      return p;
    }
    case ExprKind::FloorDiv:
    case ExprKind::Mod:
    case ExprKind::Min:
    case ExprKind::Max: {
      NodePtr a = canonicalize(n->args[0]);
      NodePtr b = canonicalize(n->args[1]);
      // Constant folding and algebraic identities on the atom level.
      bool ac = a->kind == ExprKind::Const;
      bool bc = b->kind == ExprKind::Const;
      if (ac && bc) {
        int64_t v = 0;
        switch (n->kind) {
          case ExprKind::FloorDiv: v = floordiv_i64(a->value, b->value); break;
          case ExprKind::Mod: v = mod_i64(a->value, b->value); break;
          case ExprKind::Min: v = std::min(a->value, b->value); break;
          case ExprKind::Max: v = std::max(a->value, b->value); break;
          default: break;
        }
        Poly p;
        poly_add_term(p, Mono{}, v);
        return p;
      }
      if (n->kind == ExprKind::FloorDiv && bc && b->value == 1)
        return to_poly(a, atoms);
      if (n->kind == ExprKind::Mod && bc && b->value == 1) return Poly{};
      if ((n->kind == ExprKind::Min || n->kind == ExprKind::Max) &&
          node_key(a) == node_key(b))
        return to_poly(a, atoms);
      NodePtr atom = make_nary(n->kind, {a, b});
      return atom_poly(atom, atoms);
    }
  }
  throw err("symbolic: unreachable expression kind");
}

NodePtr from_poly(const Poly& p, const AtomReg& atoms) {
  if (p.empty()) return make_const(0);
  std::vector<NodePtr> terms;
  int64_t const_term = 0;
  bool have_const = false;
  for (const auto& [m, c] : p) {
    if (m.empty()) {
      const_term = c;
      have_const = true;
      continue;
    }
    std::vector<NodePtr> factors;
    if (c != 1) factors.push_back(make_const(c));
    for (const auto& [key, pow] : m) {
      NodePtr atom = atoms.at(key);
      for (int i = 0; i < pow; ++i) factors.push_back(atom);
    }
    terms.push_back(factors.size() == 1 ? factors[0]
                                        : make_nary(ExprKind::Mul, factors));
  }
  // Constant term last, so "N - 1" prints naturally.
  if (have_const && (const_term != 0 || terms.empty()))
    terms.push_back(make_const(const_term));
  if (terms.size() == 1) return terms[0];
  return make_nary(ExprKind::Add, terms);
}

NodePtr canonicalize(const NodePtr& n) {
  AtomReg atoms;
  Poly p = to_poly(n, atoms);
  return from_poly(p, atoms);
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

void print_node(const NodePtr& n, std::ostream& os, int parent_prec);

// Precedence: 0 add, 1 mul, 2 atom.
void print_node(const NodePtr& n, std::ostream& os, int parent_prec) {
  switch (n->kind) {
    case ExprKind::Const:
      if (n->value < 0 && parent_prec > 0) {
        os << "(" << n->value << ")";
      } else {
        os << n->value;
      }
      return;
    case ExprKind::Symbol:
      os << n->name;
      return;
    case ExprKind::Add: {
      if (parent_prec > 0) os << "(";
      bool first = true;
      for (const auto& a : n->args) {
        // Render "+ (-c)*x" as "- c*x" for readability.
        bool negative = false;
        NodePtr term = a;
        if (a->kind == ExprKind::Const && a->value < 0 && !first) {
          os << " - " << -a->value;
          first = false;
          continue;
        }
        if (a->kind == ExprKind::Mul && !a->args.empty() &&
            a->args[0]->kind == ExprKind::Const && a->args[0]->value < 0 &&
            !first) {
          negative = true;
          std::vector<NodePtr> rest(a->args.begin(), a->args.end());
          rest[0] = make_const(-rest[0]->value);
          if (rest[0]->value == 1) rest.erase(rest.begin());
          term = rest.size() == 1 ? rest[0] : make_nary(ExprKind::Mul, rest);
        }
        if (!first) os << (negative ? " - " : " + ");
        print_node(term, os, 1);
        first = false;
      }
      if (parent_prec > 0) os << ")";
      return;
    }
    case ExprKind::Mul: {
      if (parent_prec > 1) os << "(";
      bool first = true;
      for (const auto& a : n->args) {
        if (!first) os << "*";
        print_node(a, os, 2);
        first = false;
      }
      if (parent_prec > 1) os << ")";
      return;
    }
    case ExprKind::FloorDiv:
      os << "(";
      print_node(n->args[0], os, 0);
      os << " // ";
      print_node(n->args[1], os, 2);
      os << ")";
      return;
    case ExprKind::Mod:
      os << "(";
      print_node(n->args[0], os, 0);
      os << " % ";
      print_node(n->args[1], os, 2);
      os << ")";
      return;
    case ExprKind::Min:
    case ExprKind::Max:
      os << (n->kind == ExprKind::Min ? "min(" : "max(");
      print_node(n->args[0], os, 0);
      os << ", ";
      print_node(n->args[1], os, 0);
      os << ")";
      return;
  }
}

std::string node_key(const NodePtr& n) {
  std::ostringstream os;
  print_node(n, os, 0);
  return os.str();
}

// ---------------------------------------------------------------------------
// Bounds (assuming all symbols >= 1)
// ---------------------------------------------------------------------------

struct Bounds {
  std::optional<int64_t> lo, hi;
};

Bounds node_bounds(const NodePtr& n);

Bounds node_bounds(const NodePtr& n) {
  switch (n->kind) {
    case ExprKind::Const:
      return {n->value, n->value};
    case ExprKind::Symbol:
      return {int64_t{1}, std::nullopt};
    case ExprKind::Add: {
      Bounds b{int64_t{0}, int64_t{0}};
      for (const auto& a : n->args) {
        Bounds ab = node_bounds(a);
        b.lo = (b.lo && ab.lo) ? std::optional<int64_t>(*b.lo + *ab.lo)
                               : std::nullopt;
        b.hi = (b.hi && ab.hi) ? std::optional<int64_t>(*b.hi + *ab.hi)
                               : std::nullopt;
      }
      return b;
    }
    case ExprKind::Mul: {
      // Conservative: only handle (const * nonneg-factors) products.
      int64_t coef = 1;
      std::optional<int64_t> lo = 1, hi = 1;
      for (const auto& a : n->args) {
        if (a->kind == ExprKind::Const) {
          coef *= a->value;
          continue;
        }
        Bounds ab = node_bounds(a);
        if (!ab.lo || *ab.lo < 0) return {};  // unknown sign factor
        lo = (lo && ab.lo) ? std::optional<int64_t>(*lo * *ab.lo)
                           : std::nullopt;
        hi = (hi && ab.hi) ? std::optional<int64_t>(*hi * *ab.hi)
                           : std::nullopt;
      }
      Bounds out;
      if (coef >= 0) {
        if (lo) out.lo = coef * *lo;
        if (hi) out.hi = coef * *hi;
      } else {
        if (hi) out.lo = coef * *hi;
        if (lo) out.hi = coef * *lo;
      }
      return out;
    }
    case ExprKind::FloorDiv: {
      Bounds a = node_bounds(n->args[0]);
      Bounds b = node_bounds(n->args[1]);
      if (a.lo && *a.lo >= 0 && b.lo && *b.lo >= 1) {
        Bounds out;
        out.lo = 0;
        if (a.hi && b.lo) out.hi = floordiv_i64(*a.hi, *b.lo);
        return out;
      }
      return {};
    }
    case ExprKind::Mod: {
      Bounds b = node_bounds(n->args[1]);
      if (b.lo && *b.lo >= 1) {
        Bounds out;
        out.lo = 0;
        if (b.hi) out.hi = *b.hi - 1;
        return out;
      }
      return {};
    }
    case ExprKind::Min: {
      Bounds a = node_bounds(n->args[0]);
      Bounds b = node_bounds(n->args[1]);
      Bounds out;
      if (a.lo && b.lo) out.lo = std::min(*a.lo, *b.lo);
      if (a.hi && b.hi) {
        out.hi = std::min(*a.hi, *b.hi);
      } else if (a.hi) {
        out.hi = a.hi;
      } else if (b.hi) {
        out.hi = b.hi;
      }
      return out;
    }
    case ExprKind::Max: {
      Bounds a = node_bounds(n->args[0]);
      Bounds b = node_bounds(n->args[1]);
      Bounds out;
      if (a.hi && b.hi) out.hi = std::max(*a.hi, *b.hi);
      if (a.lo && b.lo) {
        out.lo = std::max(*a.lo, *b.lo);
      } else if (a.lo) {
        out.lo = a.lo;
      } else if (b.lo) {
        out.lo = b.lo;
      }
      return out;
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Evaluation / substitution / free symbols
// ---------------------------------------------------------------------------

std::optional<int64_t> node_eval(const NodePtr& n, const SymbolMap& syms) {
  switch (n->kind) {
    case ExprKind::Const:
      return n->value;
    case ExprKind::Symbol: {
      auto it = syms.find(n->name);
      if (it == syms.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Add: {
      int64_t acc = 0;
      for (const auto& a : n->args) {
        auto v = node_eval(a, syms);
        if (!v) return std::nullopt;
        acc += *v;
      }
      return acc;
    }
    case ExprKind::Mul: {
      int64_t acc = 1;
      for (const auto& a : n->args) {
        auto v = node_eval(a, syms);
        if (!v) return std::nullopt;
        acc *= *v;
      }
      return acc;
    }
    default: {
      auto a = node_eval(n->args[0], syms);
      auto b = node_eval(n->args[1], syms);
      if (!a || !b) return std::nullopt;
      switch (n->kind) {
        case ExprKind::FloorDiv: return floordiv_i64(*a, *b);
        case ExprKind::Mod: return mod_i64(*a, *b);
        case ExprKind::Min: return std::min(*a, *b);
        case ExprKind::Max: return std::max(*a, *b);
        default: return std::nullopt;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Expr public interface
// ---------------------------------------------------------------------------

Expr::Expr() : node_(make_const(0)) {}
Expr::Expr(int64_t v) : node_(make_const(v)) {}

Expr Expr::symbol(const std::string& name) {
  DACE_CHECK(!name.empty(), "symbolic: empty symbol name");
  return Expr(make_symbol(name));
}

int64_t Expr::constant() const {
  DACE_CHECK(is_constant(), "symbolic: not a constant: ", to_string());
  return node_->value;
}

const std::string& Expr::symbol_name() const {
  DACE_CHECK(is_symbol(), "symbolic: not a symbol: ", to_string());
  return node_->name;
}

std::vector<Expr> Expr::operands() const {
  std::vector<Expr> out;
  out.reserve(node_->args.size());
  for (const auto& a : node_->args) out.push_back(Expr(a));
  return out;
}

int64_t Expr::eval(const SymbolMap& syms) const {
  auto v = node_eval(node_, syms);
  DACE_CHECK(v.has_value(), "symbolic: unbound symbol in ", to_string());
  return *v;
}

std::optional<int64_t> Expr::try_eval(const SymbolMap& syms) const {
  return node_eval(node_, syms);
}

namespace {
Expr rebuild_subs(const NodePtr& n, const SubstMap& map) {
  switch (n->kind) {
    case ExprKind::Const:
      return Expr(n->value);
    case ExprKind::Symbol: {
      auto it = map.find(n->name);
      if (it != map.end()) return it->second;
      return Expr::symbol(n->name);
    }
    case ExprKind::Add: {
      Expr acc(int64_t{0});
      for (const auto& a : n->args) acc = acc + rebuild_subs(a, map);
      return acc;
    }
    case ExprKind::Mul: {
      Expr acc(int64_t{1});
      for (const auto& a : n->args) acc = acc * rebuild_subs(a, map);
      return acc;
    }
    case ExprKind::FloorDiv:
      return floordiv(rebuild_subs(n->args[0], map),
                      rebuild_subs(n->args[1], map));
    case ExprKind::Mod:
      return mod(rebuild_subs(n->args[0], map), rebuild_subs(n->args[1], map));
    case ExprKind::Min:
      return min(rebuild_subs(n->args[0], map), rebuild_subs(n->args[1], map));
    case ExprKind::Max:
      return max(rebuild_subs(n->args[0], map), rebuild_subs(n->args[1], map));
  }
  throw err("symbolic: unreachable");
}

void collect_symbols(const NodePtr& n, std::set<std::string>& out) {
  if (n->kind == ExprKind::Symbol) {
    out.insert(n->name);
    return;
  }
  for (const auto& a : n->args) collect_symbols(a, out);
}
}  // namespace

Expr Expr::subs(const SubstMap& map) const { return rebuild_subs(node_, map); }

void Expr::free_symbols(std::set<std::string>& out) const {
  collect_symbols(node_, out);
}

std::set<std::string> Expr::free_symbols() const {
  std::set<std::string> out;
  free_symbols(out);
  return out;
}

bool Expr::equals(const Expr& other) const {
  if (node_ == other.node_) return true;
  return node_key(node_) == node_key(other.node_);
}

bool Expr::provably_nonnegative() const {
  Bounds b = node_bounds(node_);
  return b.lo && *b.lo >= 0;
}

bool Expr::provably_positive() const {
  Bounds b = node_bounds(node_);
  return b.lo && *b.lo >= 1;
}

bool Expr::provably_nonpositive() const {
  Bounds b = node_bounds(node_);
  return b.hi && *b.hi <= 0;
}

bool Expr::is_zero() const { return is_constant() && node_->value == 0; }
bool Expr::is_one() const { return is_constant() && node_->value == 1; }

std::string Expr::to_string() const { return node_key(node_); }

Expr operator+(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::Add, {a.node_, b.node_})));
}

Expr operator-(const Expr& a, const Expr& b) {
  auto neg = make_nary(ExprKind::Mul, {make_const(-1), b.node_});
  return Expr(canonicalize(make_nary(ExprKind::Add, {a.node_, neg})));
}

Expr operator*(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::Mul, {a.node_, b.node_})));
}

Expr operator-(const Expr& a) { return Expr(int64_t{0}) - a; }

Expr floordiv(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::FloorDiv, {a.node_, b.node_})));
}

Expr mod(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::Mod, {a.node_, b.node_})));
}

Expr min(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::Min, {a.node_, b.node_})));
}

Expr max(const Expr& a, const Expr& b) {
  return Expr(canonicalize(make_nary(ExprKind::Max, {a.node_, b.node_})));
}

Expr ceildiv(const Expr& a, const Expr& b) {
  return floordiv(a + b - Expr(int64_t{1}), b);
}

bool operator<(const Expr& a, const Expr& b) {
  return node_key(a.node_) < node_key(b.node_);
}

}  // namespace dace::sym
