// Symbolic integer expressions.
//
// Shapes, map ranges and memlet subsets in the SDFG IR are symbolic integer
// expressions over named size symbols (e.g. N, M, TSTEPS).  The engine
// supports construction, canonicalizing simplification (polynomial normal
// form over "atoms"), substitution, evaluation, and best-effort sign
// queries under the assumption that all free symbols are >= 1 (sizes are
// positive), mirroring how the paper uses symbolic analysis for state
// fusion, subgraph fusion and communication-redundancy checks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/common.hpp"

namespace dace::sym {

/// Concrete values for symbols, used when evaluating expressions.
using SymbolMap = std::map<std::string, int64_t>;

class Expr;

/// Symbol -> expression substitution map.
using SubstMap = std::map<std::string, Expr>;

/// Expression node kinds.  Add/Mul are n-ary; FloorDiv/Mod/Min/Max are
/// binary "atoms" for the polynomial normal form.
enum class ExprKind { Const, Symbol, Add, Mul, FloorDiv, Mod, Min, Max };

namespace detail {
struct Node;
using NodePtr = std::shared_ptr<const Node>;

struct Node {
  ExprKind kind = ExprKind::Const;
  int64_t value = 0;             // Const
  std::string name;              // Symbol
  std::vector<NodePtr> args;     // Add/Mul (n-ary), others binary
};
}  // namespace detail

/// Immutable symbolic integer expression with value semantics.
///
/// All arithmetic constructors simplify eagerly to a canonical form, so
/// structural equality after simplification is semantic equality for
/// polynomial expressions (FloorDiv/Mod/Min/Max are treated as opaque
/// atoms whose children are canonicalized recursively).
class Expr {
 public:
  /// Zero.
  Expr();
  /// Constant.
  Expr(int64_t v);  // NOLINT: implicit by design (mirrors int semantics)
  Expr(int v) : Expr(static_cast<int64_t>(v)) {}

  /// A named symbol.
  static Expr symbol(const std::string& name);

  ExprKind kind() const { return node_->kind; }
  bool is_constant() const { return node_->kind == ExprKind::Const; }
  bool is_symbol() const { return node_->kind == ExprKind::Symbol; }
  /// Value of a constant expression; throws otherwise.
  int64_t constant() const;
  /// Name of a symbol expression; throws otherwise.
  const std::string& symbol_name() const;

  /// Child expressions (empty for Const/Symbol). Children of canonical
  /// expressions are themselves canonical.
  std::vector<Expr> operands() const;

  /// Evaluate with all symbols bound; throws on unbound symbol.
  int64_t eval(const SymbolMap& syms) const;
  /// Evaluate, or nullopt if some symbol is unbound.
  std::optional<int64_t> try_eval(const SymbolMap& syms) const;

  /// Substitute symbols by expressions (simultaneously), then simplify.
  Expr subs(const SubstMap& map) const;

  /// Collect free symbol names into `out`.
  void free_symbols(std::set<std::string>& out) const;
  std::set<std::string> free_symbols() const;

  /// Semantic equality (via canonical form); exact for polynomials,
  /// structural for atoms.
  bool equals(const Expr& other) const;

  /// Best-effort sign queries assuming every free symbol is >= 1.
  /// Returns true only when provable; false means "unknown or false".
  bool provably_nonnegative() const;
  bool provably_positive() const;
  bool provably_nonpositive() const;
  /// True iff canonical form is the constant 0.
  bool is_zero() const;
  bool is_one() const;

  std::string to_string() const;

  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator*(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a);
  Expr& operator+=(const Expr& b) { return *this = *this + b; }
  Expr& operator-=(const Expr& b) { return *this = *this - b; }
  Expr& operator*=(const Expr& b) { return *this = *this * b; }

  /// Integer floor division / modulo / min / max.
  friend Expr floordiv(const Expr& a, const Expr& b);
  friend Expr mod(const Expr& a, const Expr& b);
  friend Expr min(const Expr& a, const Expr& b);
  friend Expr max(const Expr& a, const Expr& b);

  /// ceil(a / b) for positive b, expressed as floordiv(a + b - 1, b).
  friend Expr ceildiv(const Expr& a, const Expr& b);

  /// Total order for use as container key (structural on canonical form).
  friend bool operator<(const Expr& a, const Expr& b);
  friend bool operator==(const Expr& a, const Expr& b) { return a.equals(b); }
  friend bool operator!=(const Expr& a, const Expr& b) { return !a.equals(b); }

 private:
  explicit Expr(detail::NodePtr n) : node_(std::move(n)) {}
  detail::NodePtr node_;

  friend class ExprBuilderAccess;
};

// Namespace-scope declarations (friends alone are only visible via ADL).
Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr floordiv(const Expr& a, const Expr& b);
Expr mod(const Expr& a, const Expr& b);
Expr min(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);
Expr ceildiv(const Expr& a, const Expr& b);
bool operator<(const Expr& a, const Expr& b);

/// Convenience: symbol literal.
inline Expr S(const std::string& name) { return Expr::symbol(name); }

}  // namespace dace::sym
