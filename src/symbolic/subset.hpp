// Symbolic ranges and subsets (the contents of memlets).
//
// A Range is a half-open interval [begin, end) with a positive step; a
// Subset is a rectangular product of ranges, one per array dimension.
// Subsets support the symbolic set algebra the transformations need:
// disjointness ("may these two accesses race?"), coverage ("is the data a
// map consumes a subset of what the previous map produced?"), offsetting,
// and size queries.  All queries are best-effort and conservative: a
// three-valued result is returned where precision may be lost.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "symbolic/symbolic.hpp"

namespace dace::sym {

/// Half-open symbolic interval [begin, end) with positive step.
struct Range {
  Expr begin;
  Expr end;
  Expr step = Expr(int64_t{1});

  Range() = default;
  Range(Expr b, Expr e) : begin(std::move(b)), end(std::move(e)) {}
  Range(Expr b, Expr e, Expr s)
      : begin(std::move(b)), end(std::move(e)), step(std::move(s)) {}

  /// Range covering exactly one index.
  static Range index(Expr i) { return Range(i, i + Expr(int64_t{1})); }

  /// Number of iterations: ceil((end - begin) / step).
  Expr size() const { return ceildiv(end - begin, step); }

  bool is_index() const { return size().is_one() && step.is_one(); }

  Range subs(const SubstMap& m) const {
    return Range(begin.subs(m), end.subs(m), step.subs(m));
  }

  std::string to_string() const;

  bool equals(const Range& o) const {
    return begin.equals(o.begin) && end.equals(o.end) && step.equals(o.step);
  }
};

/// Rectangular product of ranges. An empty dimension list denotes a scalar.
class Subset {
 public:
  Subset() = default;
  explicit Subset(std::vector<Range> ranges) : ranges_(std::move(ranges)) {}

  /// The full subset of an array with the given shape: [0,s) per dim.
  static Subset full(const std::vector<Expr>& shape);
  /// A single element at the given indices.
  static Subset element(const std::vector<Expr>& indices);

  size_t dims() const { return ranges_.size(); }
  const Range& range(size_t d) const { return ranges_.at(d); }
  Range& range(size_t d) { return ranges_.at(d); }
  const std::vector<Range>& ranges() const { return ranges_; }

  /// Extent per dimension.
  std::vector<Expr> sizes() const;
  /// Total number of elements.
  Expr num_elements() const;

  /// True if every dimension selects a single index.
  bool is_element() const;

  Subset subs(const SubstMap& m) const;

  /// Three-valued disjointness: true = provably disjoint, false = provably
  /// intersecting, nullopt = unknown. Unit-step dims are reasoned about
  /// precisely; equal non-unit steps use residue classes (0:2N:2 vs
  /// 1:2N:2 is disjoint); other positive steps degrade to their covering
  /// interval, and steps not provably positive yield no conclusion.
  static std::optional<bool> disjoint(const Subset& a, const Subset& b);

  /// True if this subset provably covers `other` (other ⊆ this).
  bool covers(const Subset& other) const;

  /// Exact equality per dimension.
  bool equals(const Subset& other) const;

  /// Translate: add `offsets[d]` to begin/end of each dimension.
  Subset offset_by(const std::vector<Expr>& offsets) const;

  /// Bounding box of two subsets (per-dim min of begins / max of ends,
  /// unit step).
  static Subset hull(const Subset& a, const Subset& b);

  std::string to_string() const;

 private:
  std::vector<Range> ranges_;
};

}  // namespace dace::sym
