#include "symbolic/subset.hpp"

#include <sstream>

namespace dace::sym {

std::string Range::to_string() const {
  std::ostringstream os;
  if (is_index()) {
    os << begin.to_string();
  } else {
    os << begin.to_string() << ":" << end.to_string();
    if (!step.is_one()) os << ":" << step.to_string();
  }
  return os.str();
}

Subset Subset::full(const std::vector<Expr>& shape) {
  std::vector<Range> rs;
  rs.reserve(shape.size());
  for (const auto& s : shape) rs.emplace_back(Expr(int64_t{0}), s);
  return Subset(std::move(rs));
}

Subset Subset::element(const std::vector<Expr>& indices) {
  std::vector<Range> rs;
  rs.reserve(indices.size());
  for (const auto& i : indices) rs.push_back(Range::index(i));
  return Subset(std::move(rs));
}

std::vector<Expr> Subset::sizes() const {
  std::vector<Expr> out;
  out.reserve(ranges_.size());
  for (const auto& r : ranges_) out.push_back(r.size());
  return out;
}

Expr Subset::num_elements() const {
  Expr n(int64_t{1});
  for (const auto& r : ranges_) n = n * r.size();
  return n;
}

bool Subset::is_element() const {
  for (const auto& r : ranges_) {
    if (!r.is_index()) return false;
  }
  return true;
}

Subset Subset::subs(const SubstMap& m) const {
  std::vector<Range> rs;
  rs.reserve(ranges_.size());
  for (const auto& r : ranges_) rs.push_back(r.subs(m));
  return Subset(std::move(rs));
}

namespace {

/// Alignment of two equal-step arithmetic progressions: true = the begin
/// offset is a multiple of the step (same residue class), false = it
/// provably is not (the progressions can never meet), nullopt = unknown.
std::optional<bool> stride_aligned(const Expr& diff, const Expr& step) {
  if (diff.is_constant() && step.is_constant() && step.constant() > 0) {
    int64_t s = step.constant();
    int64_t r = diff.constant() % s;
    return (r % s + s) % s == 0;
  }
  // Best effort on symbolic offsets: mod() canonicalizes e.g. mod(0, s)
  // and mod(c*s, s) to constants.
  Expr m = mod(diff, step);
  if (m.is_constant()) return m.constant() == 0;
  return std::nullopt;
}

/// True if `p` provably lies in both covering intervals [begin, end).
bool provably_inside(const Expr& p, const Range& ra, const Range& rb) {
  return (p - ra.begin).provably_nonnegative() &&
         (ra.end - p - Expr(int64_t{1})).provably_nonnegative() &&
         (p - rb.begin).provably_nonnegative() &&
         (rb.end - p - Expr(int64_t{1})).provably_nonnegative();
}

}  // namespace

std::optional<bool> Subset::disjoint(const Subset& a, const Subset& b) {
  if (a.dims() != b.dims()) return std::nullopt;
  // Disjoint if provably disjoint in ANY dimension; intersecting only if
  // provably overlapping in ALL dimensions.
  bool all_overlap = true;
  for (size_t d = 0; d < a.dims(); ++d) {
    const Range& ra = a.range(d);
    const Range& rb = b.range(d);
    // Steps that are not provably positive (negative or unknown sign)
    // invert the [begin, end) covering interval; draw no conclusion.
    if (!ra.step.provably_positive() || !rb.step.provably_positive()) {
      all_overlap = false;
      continue;
    }
    // Interval reasoning on the covering intervals [begin, end).
    // Disjoint if ra.end <= rb.begin or rb.end <= ra.begin.
    if ((rb.begin - ra.end).provably_nonnegative() ||
        (ra.begin - rb.end).provably_nonnegative()) {
      return true;
    }
    if (ra.step.is_one() && rb.step.is_one()) {
      // Overlap proven if ra.begin < rb.end and rb.begin < ra.end.
      bool overlap =
          (rb.end - ra.begin - Expr(int64_t{1})).provably_nonnegative() &&
          (ra.end - rb.begin - Expr(int64_t{1})).provably_nonnegative();
      if (!overlap) all_overlap = false;
      continue;
    }
    if (ra.step.equals(rb.step)) {
      // Equal-step lattices: disjoint residue classes never meet, however
      // the intervals overlap (e.g. 0:2N:2 vs 1:2N:2).
      std::optional<bool> aligned = stride_aligned(rb.begin - ra.begin,
                                                   ra.step);
      if (aligned.has_value() && !*aligned) return true;
      // Aligned lattices overlap if the later begin (a common lattice
      // point of both progressions) lies inside both intervals.
      if (aligned.has_value() && *aligned &&
          (provably_inside(rb.begin, ra, rb) ||
           provably_inside(ra.begin, ra, rb))) {
        continue;  // overlap proven in this dimension
      }
    }
    all_overlap = false;
  }
  if (all_overlap) return false;
  return std::nullopt;
}

bool Subset::covers(const Subset& other) const {
  if (dims() != other.dims()) return false;
  for (size_t d = 0; d < dims(); ++d) {
    const Range& mine = range(d);
    const Range& theirs = other.range(d);
    if (!mine.step.is_one()) {
      // Identical strided ranges (symbolic bounds included) trivially
      // cover each other.
      if (mine.equals(theirs)) continue;
      // Same-step progressions: covered if the begin offset is a
      // nonnegative multiple of the step and the end does not extend
      // past mine (subset of the same lattice).
      Expr diff = theirs.begin - mine.begin;
      std::optional<bool> aligned = stride_aligned(diff, mine.step);
      if (mine.step.equals(theirs.step) && aligned.has_value() && *aligned &&
          diff.provably_nonnegative() &&
          (mine.end - theirs.end).provably_nonnegative()) {
        continue;
      }
      return false;
    }
    // mine.begin <= theirs.begin and theirs.end <= mine.end.
    if (!(theirs.begin - mine.begin).provably_nonnegative()) return false;
    if (!(mine.end - theirs.end).provably_nonnegative()) return false;
  }
  return true;
}

bool Subset::equals(const Subset& other) const {
  if (dims() != other.dims()) return false;
  for (size_t d = 0; d < dims(); ++d) {
    if (!range(d).equals(other.range(d))) return false;
  }
  return true;
}

Subset Subset::offset_by(const std::vector<Expr>& offsets) const {
  DACE_CHECK(offsets.size() == dims(), "subset: offset rank mismatch");
  std::vector<Range> rs;
  rs.reserve(ranges_.size());
  for (size_t d = 0; d < dims(); ++d) {
    rs.emplace_back(ranges_[d].begin + offsets[d], ranges_[d].end + offsets[d],
                    ranges_[d].step);
  }
  return Subset(std::move(rs));
}

Subset Subset::hull(const Subset& a, const Subset& b) {
  DACE_CHECK(a.dims() == b.dims(), "subset: hull rank mismatch");
  std::vector<Range> rs;
  for (size_t d = 0; d < a.dims(); ++d) {
    rs.emplace_back(min(a.range(d).begin, b.range(d).begin),
                    max(a.range(d).end, b.range(d).end));
  }
  return Subset(std::move(rs));
}

std::string Subset::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t d = 0; d < ranges_.size(); ++d) {
    if (d) os << ", ";
    os << ranges_[d].to_string();
  }
  os << "]";
  return os.str();
}

}  // namespace dace::sym
