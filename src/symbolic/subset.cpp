#include "symbolic/subset.hpp"

#include <sstream>

namespace dace::sym {

std::string Range::to_string() const {
  std::ostringstream os;
  if (is_index()) {
    os << begin.to_string();
  } else {
    os << begin.to_string() << ":" << end.to_string();
    if (!step.is_one()) os << ":" << step.to_string();
  }
  return os.str();
}

Subset Subset::full(const std::vector<Expr>& shape) {
  std::vector<Range> rs;
  rs.reserve(shape.size());
  for (const auto& s : shape) rs.emplace_back(Expr(int64_t{0}), s);
  return Subset(std::move(rs));
}

Subset Subset::element(const std::vector<Expr>& indices) {
  std::vector<Range> rs;
  rs.reserve(indices.size());
  for (const auto& i : indices) rs.push_back(Range::index(i));
  return Subset(std::move(rs));
}

std::vector<Expr> Subset::sizes() const {
  std::vector<Expr> out;
  out.reserve(ranges_.size());
  for (const auto& r : ranges_) out.push_back(r.size());
  return out;
}

Expr Subset::num_elements() const {
  Expr n(int64_t{1});
  for (const auto& r : ranges_) n = n * r.size();
  return n;
}

bool Subset::is_element() const {
  for (const auto& r : ranges_) {
    if (!r.is_index()) return false;
  }
  return true;
}

Subset Subset::subs(const SubstMap& m) const {
  std::vector<Range> rs;
  rs.reserve(ranges_.size());
  for (const auto& r : ranges_) rs.push_back(r.subs(m));
  return Subset(std::move(rs));
}

std::optional<bool> Subset::disjoint(const Subset& a, const Subset& b) {
  if (a.dims() != b.dims()) return std::nullopt;
  // Disjoint if provably disjoint in ANY dimension; intersecting only if
  // provably overlapping in ALL dimensions.
  bool all_overlap = true;
  for (size_t d = 0; d < a.dims(); ++d) {
    const Range& ra = a.range(d);
    const Range& rb = b.range(d);
    // Interval reasoning on the covering intervals [begin, end).
    // Disjoint if ra.end <= rb.begin or rb.end <= ra.begin.
    if ((rb.begin - ra.end).provably_nonnegative() ||
        (ra.begin - rb.end).provably_nonnegative()) {
      return true;
    }
    // Overlap proven if ra.begin < rb.end and rb.begin < ra.end.
    bool overlap = (rb.end - ra.begin - Expr(int64_t{1})).provably_nonnegative() &&
                   (ra.end - rb.begin - Expr(int64_t{1})).provably_nonnegative();
    if (!overlap || !ra.step.is_one() || !rb.step.is_one())
      all_overlap = false;
  }
  if (all_overlap) return false;
  return std::nullopt;
}

bool Subset::covers(const Subset& other) const {
  if (dims() != other.dims()) return false;
  for (size_t d = 0; d < dims(); ++d) {
    const Range& mine = range(d);
    const Range& theirs = other.range(d);
    if (!mine.step.is_one()) {
      // Strided coverage only if ranges are identical.
      if (!mine.equals(theirs)) return false;
      continue;
    }
    // mine.begin <= theirs.begin and theirs.end <= mine.end.
    if (!(theirs.begin - mine.begin).provably_nonnegative()) return false;
    if (!(mine.end - theirs.end).provably_nonnegative()) return false;
  }
  return true;
}

bool Subset::equals(const Subset& other) const {
  if (dims() != other.dims()) return false;
  for (size_t d = 0; d < dims(); ++d) {
    if (!range(d).equals(other.range(d))) return false;
  }
  return true;
}

Subset Subset::offset_by(const std::vector<Expr>& offsets) const {
  DACE_CHECK(offsets.size() == dims(), "subset: offset rank mismatch");
  std::vector<Range> rs;
  rs.reserve(ranges_.size());
  for (size_t d = 0; d < dims(); ++d) {
    rs.emplace_back(ranges_[d].begin + offsets[d], ranges_[d].end + offsets[d],
                    ranges_[d].step);
  }
  return Subset(std::move(rs));
}

Subset Subset::hull(const Subset& a, const Subset& b) {
  DACE_CHECK(a.dims() == b.dims(), "subset: hull rank mismatch");
  std::vector<Range> rs;
  for (size_t d = 0; d < a.dims(); ++d) {
    rs.emplace_back(min(a.range(d).begin, b.range(d).begin),
                    max(a.range(d).end, b.range(d).end));
  }
  return Subset(std::move(rs));
}

std::string Subset::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t d = 0; d < ranges_.size(); ++d) {
    if (d) os << ", ";
    os << ranges_[d].to_string();
  }
  os << "]";
  return os.str();
}

}  // namespace dace::sym
