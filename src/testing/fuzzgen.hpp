// Differential SDFG fuzzer (the crash-safety counterpart of the chaos
// harness): a seeded generator of random well-typed DaCeLang programs --
// elementwise expressions, broadcasts, slices, matrix products, WCR
// accumulations, dace.map scopes and nested control flow -- executed
// differentially across the eager interpreter, the Tier-0 VM, the
// optimized VM and the auto-optimized pipeline.  Any divergence or
// uncontained crash is a compiler bug; the greedy minimizer shrinks the
// offending program before it is written to the reproducer corpus.
//
// Everything is deterministic: the same seed yields the same program,
// the same symbol sizes and the same input data, so corpus entries
// replay exactly (ctest -L fuzz, tools/sdfg-fuzz).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/executor.hpp"

namespace dace::fuzz {

/// Knobs for the program generator (defaults exercise everything).
struct FuzzOptions {
  int min_statements = 3;
  int max_statements = 7;
  bool allow_maps = true;        // dace.map scopes (incl. WCR bodies)
  bool allow_control_flow = true;  // if/else over symbols, range loops
  bool allow_matmul = true;      // @, np.outer
  bool allow_reductions = true;  // np.sum / np.max
  bool allow_slices = true;      // shifted-slice assignments, stencils
  bool allow_broadcast = true;   // (N,M) op (M,) / scalar broadcasts
};

/// Deterministic generator: same seed -> same program text.
std::string generate_program(uint64_t seed, const FuzzOptions& opts = {});

/// Symbol sizes used for a given seed (small: N, M in [3, 7]).
sym::SymbolMap symbol_values(uint64_t seed);

/// Deterministic input bindings for the generated program's signature.
rt::Bindings make_inputs(uint64_t seed);

/// Deep copy (generated bindings are shared views; each config needs its
/// own buffers).
rt::Bindings clone_bindings(const rt::Bindings& b);

/// The execution configurations compared by the differential harness.
/// Tier1Native (auto-opt + synchronous JIT promotion at threshold 1)
/// only joins the comparison when DACE_FUZZ_TIER1=1: it needs a host
/// compiler and exercises the kernel-plan codegen path end to end.
enum class Config { Eager, Tier0VM, OptimizedVM, AutoOpt, Tier1Native };
constexpr int kNumConfigs = 4;  // default configs (Tier1Native is opt-in)
const char* config_name(Config c);

/// How one differential run ended.
enum class DiffStatus {
  Ok,            // all configs agreed
  CompileError,  // the program did not compile (contained diagnostics)
  ConfigError,   // a config rejected a program another config accepted
  Mismatch,      // outputs diverged between configs
  Crash,         // an uncontained (non-dace::Error) exception escaped
};
const char* diff_status_name(DiffStatus s);

struct DiffResult {
  DiffStatus status = DiffStatus::Ok;
  std::string detail;  // which config / output / error text
  bool failed() const { return status != DiffStatus::Ok; }
};

/// Execute `source` under every configuration with seed-derived inputs
/// and compare all outputs against the eager interpreter.  Never throws;
/// crashes of the compiler or runtime are contained and reported.
DiffResult run_differential(const std::string& source, uint64_t seed);

/// Greedy delta-debugging minimizer: repeatedly deletes chunks of body
/// lines while `still_failing` holds on the shrunk program.  Returns the
/// smallest failing program found.
std::string minimize(const std::string& source,
                     const std::function<bool(const std::string&)>&
                         still_failing);

}  // namespace dace::fuzz
