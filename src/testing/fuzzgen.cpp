#include "testing/fuzzgen.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "kernels/suite.hpp"
#include "runtime/eager_interpreter.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace::fuzz {

namespace {

/// splitmix64: deterministic and platform-independent, so a seed names
/// the same program on every machine.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<uint64_t>(hi - lo + 1));
  }
  bool chance(int pct) { return range(1, 100) <= pct; }
};

/// Scoped environment override (mirrors the test harness EnvGuard).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

enum class Kind { Mat, Row, Col, Scalar };

struct Var {
  std::string name;
  Kind kind;
};

/// Constants as fixed strings so program text is bit-stable; all are
/// "safe" (no zero divisors, no huge magnitudes).
const char* kConsts[] = {"0.5", "1.25", "2.0", "0.75", "3.0", "0.333"};

struct Gen {
  Rng rng;
  FuzzOptions opts;
  std::vector<Var> vars;
  int tmp_count = 0;
  std::ostringstream body;

  Gen(uint64_t seed, const FuzzOptions& o) : rng(seed), opts(o) {
    vars = {{"A", Kind::Mat},    {"B", Kind::Mat}, {"u", Kind::Row},
            {"v", Kind::Col},    {"out", Kind::Mat}, {"acc", Kind::Col}};
  }

  std::string constant() { return kConsts[rng.range(0, 5)]; }

  std::string pick(Kind k) {
    std::vector<const std::string*> c;
    for (const Var& v : vars)
      if (v.kind == k) c.push_back(&v.name);
    if (c.empty()) return "";
    return *c[rng.range(0, static_cast<int>(c.size()) - 1)];
  }

  std::string scalar_atom() {
    if (rng.chance(40)) {
      std::string s = pick(Kind::Scalar);
      if (!s.empty()) return s;
    }
    return constant();
  }

  std::string fresh(Kind k) {
    const char* prefix = k == Kind::Mat   ? "tm"
                         : k == Kind::Row ? "tr"
                         : k == Kind::Col ? "tc"
                                          : "ts";
    std::string name = prefix + std::to_string(tmp_count++);
    vars.push_back({name, k});
    return name;
  }

  /// Leaf of an elementwise expression of the given shape kind.
  std::string leaf(Kind k) {
    switch (k) {
      case Kind::Mat:
        if (opts.allow_matmul && rng.chance(12))
          return "np.outer(" + pick(Kind::Col) + ", " + pick(Kind::Row) + ")";
        if (opts.allow_broadcast && rng.chance(12))
          return "(" + pick(Kind::Mat) + " + " + pick(Kind::Row) + ")";
        return pick(Kind::Mat);
      case Kind::Row:
        if (opts.allow_matmul && rng.chance(18))
          return "(" + pick(Kind::Col) + " @ " + pick(Kind::Mat) + ")";
        return pick(Kind::Row);
      case Kind::Col:
        if (opts.allow_matmul && rng.chance(18))
          return "(" + pick(Kind::Mat) + " @ " + pick(Kind::Row) + ")";
        return pick(Kind::Col);
      case Kind::Scalar:
        return scalar_atom();
    }
    return constant();
  }

  /// Elementwise expression of shape kind `k`.  Only bounded or
  /// magnitude-preserving operations, so values stay finite and the
  /// differential tolerance stays meaningful.
  std::string expr(Kind k, int depth) {
    if (depth <= 0) return leaf(k);
    switch (rng.range(0, 5)) {
      case 0:
      case 1: {
        const char* ops[] = {"+", "-", "*"};
        return "(" + expr(k, depth - 1) + " " + ops[rng.range(0, 2)] + " " +
               expr(k, depth - 1) + ")";
      }
      case 2:
        return "(" + expr(k, depth - 1) + " / " + constant() + ")";
      case 3: {
        const char* fs[] = {"np.tanh", "np.sin", "np.cos", "np.abs"};
        return std::string(fs[rng.range(0, 3)]) + "(" + expr(k, depth - 1) +
               ")";
      }
      case 4:
        return std::string(rng.chance(50) ? "np.minimum" : "np.maximum") +
               "(" + expr(k, depth - 1) + ", " + expr(k, depth - 1) + ")";
      default:
        return "(" + scalar_atom() + " * " + expr(k, depth - 1) + ")";
    }
  }

  /// Scalar expression over map indices i (rows) and j (columns).
  std::string map_expr(int depth) {
    if (depth <= 0) {
      switch (rng.range(0, 3)) {
        case 0: return pick(Kind::Mat) + "[i, j]";
        case 1: return pick(Kind::Col) + "[i]";
        case 2: return pick(Kind::Row) + "[j]";
        default: return scalar_atom();
      }
    }
    if (rng.chance(25))
      return "np.tanh(" + map_expr(depth - 1) + ")";
    const char* ops[] = {"+", "-", "*"};
    return "(" + map_expr(depth - 1) + " " + ops[rng.range(0, 2)] + " " +
           map_expr(depth - 1) + ")";
  }

  void emit(int indent, const std::string& s) {
    body << std::string(static_cast<size_t>(indent) * 4, ' ') << s << "\n";
  }

  /// One statement.  `allow_new` gates transient creation (names first
  /// bound inside an `if` branch are invisible afterwards, so nested
  /// statements only write existing containers).
  void stmt(int indent, bool allow_new) {
    int kind = rng.range(0, 11);
    switch (kind) {
      case 0:
      case 1: {  // elementwise matrix assignment
        std::string rhs = expr(Kind::Mat, 2);
        if (allow_new && rng.chance(40))
          emit(indent, fresh(Kind::Mat) + " = " + rhs);
        else
          emit(indent, pick(Kind::Mat) + "[:] = " + rhs);
        return;
      }
      case 2: {  // elementwise vector assignment (column)
        std::string rhs = expr(Kind::Col, 2);
        if (allow_new && rng.chance(40))
          emit(indent, fresh(Kind::Col) + " = " + rhs);
        else
          emit(indent, pick(Kind::Col) + "[:] = " + rhs);
        return;
      }
      case 3: {  // elementwise vector assignment (row)
        std::string rhs = expr(Kind::Row, 2);
        if (allow_new && rng.chance(40))
          emit(indent, fresh(Kind::Row) + " = " + rhs);
        else
          emit(indent, pick(Kind::Row) + "[:] = " + rhs);
        return;
      }
      case 4: {  // augmented whole-array update
        Kind k = rng.chance(50) ? Kind::Mat : Kind::Col;
        const char* op = rng.chance(70) ? "+=" : "-=";
        emit(indent, pick(k) + "[:] " + op + " " + expr(k, 1));
        return;
      }
      case 5: {  // reduction into a scalar transient
        if (!opts.allow_reductions || !allow_new) break;
        const char* red = rng.chance(60) ? "np.sum" : "np.max";
        emit(indent,
             fresh(Kind::Scalar) + " = " + std::string(red) + "(" +
                 pick(Kind::Mat) + ")");
        return;
      }
      case 6:
      case 7: {  // dace.map scope, optionally with WCR accumulation
        if (!opts.allow_maps) break;
        emit(indent, "for i, j in dace.map[0:N, 0:M]:");
        if (rng.chance(35)) {  // WCR: indices do not cover both params
          emit(indent + 1, pick(Kind::Col) + "[i] += " + map_expr(1));
        } else {
          std::string target = pick(Kind::Mat);
          if (rng.chance(40)) {
            emit(indent + 1, "loc = " + map_expr(1));
            emit(indent + 1, target + "[i, j] = loc + " + map_expr(1));
          } else {
            emit(indent + 1, target + "[i, j] = " + map_expr(2));
          }
        }
        return;
      }
      case 8: {  // three-point stencil under a range loop (slices)
        if (!opts.allow_slices || !opts.allow_control_flow) break;
        std::string w = pick(rng.chance(50) ? Kind::Col : Kind::Row);
        emit(indent, "for t in range(" + std::to_string(rng.range(1, 3)) +
                         "):");
        emit(indent + 1, w + "[1:-1] = " + constant() + " * (" + w +
                             "[:-2] + " + w + "[1:-1] + " + w + "[2:])");
        return;
      }
      case 9: {  // shifted-slice matrix assignment
        if (!opts.allow_slices) break;
        static const char* pairs[][2] = {{"[1:, :]", "[:-1, :]"},
                                         {"[:-1, :]", "[1:, :]"},
                                         {"[:, 1:]", "[:, :-1]"},
                                         {"[1:-1, :]", "[1:-1, :]"}};
        int p = rng.range(0, 3);
        std::string x = pick(Kind::Mat);
        std::string y = pick(Kind::Mat);
        emit(indent, x + pairs[p][0] + " = " + y + pairs[p][1] + " * " +
                         constant() + " + " + x + pairs[p][0] + " * " +
                         constant());
        return;
      }
      case 10: {  // symbol-conditional branch with nested statements
        if (!opts.allow_control_flow || indent > 1) break;
        static const char* conds[] = {"N > M", "M > N", "N >= 3", "M > 2"};
        emit(indent, std::string("if ") + conds[rng.range(0, 3)] + ":");
        stmt(indent + 1, /*allow_new=*/false);
        if (rng.chance(50)) {
          emit(indent, "else:");
          stmt(indent + 1, /*allow_new=*/false);
        }
        return;
      }
      default:
        break;
    }
    // Fallback: an always-valid elementwise update.
    emit(indent, pick(Kind::Mat) + "[:] = " + expr(Kind::Mat, 1));
  }
};

}  // namespace

std::string generate_program(uint64_t seed, const FuzzOptions& opts) {
  Gen g(seed, opts);
  int n = g.rng.range(opts.min_statements, opts.max_statements);
  for (int i = 0; i < n; ++i) g.stmt(1, /*allow_new=*/true);
  std::ostringstream os;
  os << "@dace.program\n"
     << "def fuzz(A: dace.float64[N, M], B: dace.float64[N, M],\n"
     << "         u: dace.float64[M], v: dace.float64[N],\n"
     << "         out: dace.float64[N, M], acc: dace.float64[N]):\n"
     << g.body.str();
  return os.str();
}

sym::SymbolMap symbol_values(uint64_t seed) {
  Rng rng(seed ^ 0xf00dULL);
  return {{"N", rng.range(3, 7)}, {"M", rng.range(3, 7)}};
}

rt::Bindings make_inputs(uint64_t seed) {
  sym::SymbolMap s = symbol_values(seed);
  int64_t n = s.at("N"), m = s.at("M");
  auto pat = [&](std::vector<int64_t> shape, unsigned fill_seed) {
    rt::Tensor t(ir::DType::f64, std::move(shape));
    kernels::fill_pattern(t, fill_seed);
    return t;
  };
  unsigned base = static_cast<unsigned>(seed * 6);
  rt::Bindings b;
  b.emplace("A", pat({n, m}, base + 1));
  b.emplace("B", pat({n, m}, base + 2));
  b.emplace("u", pat({m}, base + 3));
  b.emplace("v", pat({n}, base + 4));
  b.emplace("out", pat({n, m}, base + 5));
  b.emplace("acc", pat({n}, base + 6));
  return b;
}

rt::Bindings clone_bindings(const rt::Bindings& b) {
  rt::Bindings out;
  for (const auto& [name, t] : b) {
    rt::Tensor c(t.dtype(), t.shape());
    for (int64_t i = 0; i < t.size(); ++i) c.set_flat(i, t.get_flat(i));
    out.emplace(name, std::move(c));
  }
  return out;
}

const char* config_name(Config c) {
  switch (c) {
    case Config::Eager: return "eager";
    case Config::Tier0VM: return "tier0-vm";
    case Config::OptimizedVM: return "optimized-vm";
    case Config::AutoOpt: return "auto-opt";
    case Config::Tier1Native: return "tier1-native";
  }
  return "?";
}

const char* diff_status_name(DiffStatus s) {
  switch (s) {
    case DiffStatus::Ok: return "ok";
    case DiffStatus::CompileError: return "compile-error";
    case DiffStatus::ConfigError: return "config-error";
    case DiffStatus::Mismatch: return "mismatch";
    case DiffStatus::Crash: return "crash";
  }
  return "?";
}

namespace {

struct ConfigOut {
  bool ok = false;         // ran to completion
  bool contained = false;  // failed with a dace::Error (diagnosed)
  std::string error;
  rt::Bindings outputs;
};

ConfigOut run_one(Config c, const std::string& src,
                  const rt::Bindings& inputs, const sym::SymbolMap& syms) {
  ConfigOut r;
  r.outputs = clone_bindings(inputs);
  try {
    switch (c) {
      case Config::Eager: {
        fe::Module m = fe::parse(src);
        DACE_CHECK(!m.functions.empty(), "generated module has no function");
        rt::EagerInterpreter interp(m.functions.back());
        interp.run(r.outputs, syms);
        break;
      }
      case Config::Tier0VM: {
        EnvGuard bc("DACEPP_BC_OPT", "0");
        EnvGuard jit("DACEPP_JIT", "0");
        auto sdfg = fe::compile_to_sdfg(src);
        rt::execute(*sdfg, r.outputs, syms);
        break;
      }
      case Config::OptimizedVM: {
        EnvGuard bc("DACEPP_BC_OPT", "1");
        EnvGuard jit("DACEPP_JIT", "0");
        auto sdfg = fe::compile_to_sdfg(src);
        rt::execute(*sdfg, r.outputs, syms);
        break;
      }
      case Config::AutoOpt: {
        EnvGuard bc("DACEPP_BC_OPT", "1");
        EnvGuard jit("DACEPP_JIT", "0");
        auto sdfg = fe::compile_to_sdfg(src);
        xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
        rt::execute(*sdfg, r.outputs, syms);
        break;
      }
      case Config::Tier1Native: {
        // Promote every map synchronously on first launch so the native
        // (kernel-plan) codegen actually executes; maps the host
        // compiler rejects fall back to the VM, which still agrees.
        EnvGuard bc("DACEPP_BC_OPT", "1");
        EnvGuard jit("DACEPP_JIT", "1");
        EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
        EnvGuard sync("DACEPP_JIT_SYNC", "1");
        auto sdfg = fe::compile_to_sdfg(src);
        xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
        rt::execute(*sdfg, r.outputs, syms);
        break;
      }
    }
    r.ok = true;
  } catch (const Error& e) {
    r.contained = true;
    r.error = e.what();
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown exception type";
  }
  return r;
}

}  // namespace

DiffResult run_differential(const std::string& source, uint64_t seed) {
  DiffResult out;
  sym::SymbolMap syms = symbol_values(seed);
  rt::Bindings inputs = make_inputs(seed);

  ConfigOut ref = run_one(Config::Eager, source, inputs, syms);
  if (!ref.ok && !ref.contained) {
    out.status = DiffStatus::Crash;
    out.detail = std::string("eager: uncontained exception: ") + ref.error;
    return out;
  }

  std::vector<Config> rest = {Config::Tier0VM, Config::OptimizedVM,
                              Config::AutoOpt};
  if (const char* t1 = std::getenv("DACE_FUZZ_TIER1");
      t1 && t1[0] == '1' && t1[1] == '\0')
    rest.push_back(Config::Tier1Native);
  for (Config c : rest) {
    ConfigOut r = run_one(c, source, inputs, syms);
    if (!r.ok && !r.contained) {
      out.status = DiffStatus::Crash;
      out.detail = std::string(config_name(c)) +
                   ": uncontained exception: " + r.error;
      return out;
    }
    if (r.ok != ref.ok) {
      out.status = DiffStatus::ConfigError;
      out.detail = std::string(config_name(c)) +
                   (r.ok ? " accepted a program eager rejects ("
                         : " rejected a program eager accepts (") +
                   (r.ok ? ref.error : r.error) + ")";
      return out;
    }
    if (!r.ok) continue;  // both diagnosed the program; that agrees
    for (const auto& [name, t] : ref.outputs) {
      const rt::Tensor& got = r.outputs.at(name);
      // WCR accumulation order differs between sequential eager
      // execution and the parallel / tiled VM paths; compare with a
      // floating-point tolerance, not bit equality.
      if (!rt::allclose(got, t, 1e-6, 1e-9)) {
        out.status = DiffStatus::Mismatch;
        out.detail = std::string(config_name(c)) + ": output '" + name +
                     "' diverges from eager, max diff " +
                     std::to_string(rt::max_abs_diff(got, t));
        return out;
      }
    }
  }
  if (!ref.ok) {
    out.status = DiffStatus::CompileError;
    out.detail = ref.error;
  }
  return out;
}

std::string minimize(const std::string& source,
                     const std::function<bool(const std::string&)>&
                         still_failing) {
  std::vector<std::string> lines;
  {
    std::istringstream is(source);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  // Keep the decorator and the (possibly multi-line) signature intact;
  // shrink only body lines.
  size_t body_start = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("):") != std::string::npos) {
      body_start = i + 1;
      break;
    }
  }
  if (body_start == 0 || body_start >= lines.size()) return source;
  std::vector<std::string> header(lines.begin(),
                                  lines.begin() + static_cast<long>(body_start));
  std::vector<std::string> bodyl(lines.begin() + static_cast<long>(body_start),
                                 lines.end());
  auto assemble = [&](const std::vector<std::string>& b) {
    std::ostringstream os;
    for (const auto& l : header) os << l << "\n";
    for (const auto& l : b) os << l << "\n";
    return os.str();
  };
  int budget = 300;  // hard cap on predicate evaluations
  bool shrunk = true;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t chunk = std::max<size_t>(bodyl.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (size_t i = 0; i + chunk <= bodyl.size() && budget > 0;) {
        if (bodyl.size() <= chunk) break;  // keep at least one line
        std::vector<std::string> cand;
        cand.reserve(bodyl.size() - chunk);
        cand.insert(cand.end(), bodyl.begin(),
                    bodyl.begin() + static_cast<long>(i));
        cand.insert(cand.end(),
                    bodyl.begin() + static_cast<long>(i + chunk),
                    bodyl.end());
        --budget;
        if (still_failing(assemble(cand))) {
          bodyl = std::move(cand);
          shrunk = true;
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return assemble(bodyl);
}

}  // namespace dace::fuzz
