// Abstract interpretation over the SDFG state machine.
//
// A monotone dataflow framework that propagates symbol facts from
// interstate edge assignments and conditions, in the spirit of the
// paper's symbolic memlet analysis: states are program points, the
// abstract domain is a per-symbol interval of symbolic expressions, and
// widening at interstate back-edges guarantees termination.  Three
// concrete analyses are built on top:
//
//   1. value ranges   -- per-state symbol intervals, per-memlet access
//                        range verdicts (in-range / unknown / violating);
//   2. stride classes -- unit / constant / affine / unknown stride of a
//                        memlet along a map parameter, per dimension and
//                        for the flattened row-major address;
//   3. element liveness -- per-element extension of defuse.cpp: dead
//                        writes and reads of never-written elements,
//                        proved with symbolic subset disjointness under
//                        the interval environment.
//
// Consumers: Tier-1 codegen (bounds-check elision, __restrict__,
// stride-1 vectorizable innermost loops), LoopToMap (independence
// proofs beyond the global ">= 1" convention), and sdfg-lint (A2xx
// diagnostics).  All verdicts are three-valued and conservative; a
// "proven" answer is a promise strong enough for codegen to act on and
// for the differential fuzzer to cross-validate dynamically.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "ir/sdfg.hpp"
#include "symbolic/subset.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::analysis::absint {

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// Inclusive interval with symbolic endpoints; a missing endpoint is
/// unbounded.  Top (both missing) means "no information".
struct Interval {
  std::optional<sym::Expr> lo, hi;

  static Interval top() { return {}; }
  static Interval exact(sym::Expr e) { return {e, e}; }
  static Interval at_least(sym::Expr e) { return {std::move(e), std::nullopt}; }
  static Interval at_most(sym::Expr e) { return {std::nullopt, std::move(e)}; }

  bool is_top() const { return !lo && !hi; }
  bool equals(const Interval& o) const;
  std::string to_string() const;
};

/// Abstract environment: symbol name -> interval.  Symbols absent from
/// the environment follow the repo-wide ">= 1" size convention *unless*
/// they are interstate-assigned (assigned symbols are always present,
/// top when unknown -- see SymbolRanges).
using Env = std::map<std::string, Interval>;

/// Convex join (control-flow merge): keeps an endpoint only when one
/// side's bound provably dominates the other; drops it otherwise.
Interval join(const Interval& a, const Interval& b);

/// Widening: keeps only the endpoints that did not change between
/// iterates, guaranteeing fixpoint termination on back-edges.
Interval widen(const Interval& older, const Interval& newer);

/// Interval arithmetic evaluation of `e` under `env`.  Unmapped symbols
/// default to [1, +inf) per the global size convention.
Interval eval_interval(const sym::Expr& e, const Env& env);

// ---------------------------------------------------------------------------
// Provers
// ---------------------------------------------------------------------------

/// Best-effort proof that `e >= 0` for every valuation admitted by
/// `env`.  Symbols with a known interval are substituted by their
/// worst-case endpoint (chosen by the sign of their affine coefficient);
/// the residue is discharged by the global ">= 1" prover, but only when
/// every remaining env-bound symbol provably satisfies that convention
/// -- so map parameters starting at 0 and widened loop variables never
/// leak into the unsound fallback.
bool proves_nonneg(const sym::Expr& e, const Env& env);

/// Three-valued comparison: true = a <= b proven, false = a > b proven,
/// nullopt = unknown.
std::optional<bool> prove_le(const sym::Expr& a, const sym::Expr& b,
                             const Env& env);

/// Three-valued verdict of a static claim.
enum class Verdict { Proven, Unknown, Refuted };
const char* verdict_name(Verdict v);

/// Does `subset` stay within `shape` (0 <= begin and last < shape per
/// dimension) for every valuation admitted by `env`?  Proven means every
/// admitted execution is in range; Refuted means every admitted
/// execution violates some dimension.
Verdict subset_in_range(const sym::Subset& subset,
                        const std::vector<sym::Expr>& shape, const Env& env);

/// Disjointness with environment facts: falls back to the global
/// Subset::disjoint first, then tries to separate some dimension using
/// interval reasoning (a.end <= b.begin or b.end <= a.begin under env).
std::optional<bool> proves_disjoint(const sym::Subset& a, const sym::Subset& b,
                                    const Env& env);

// ---------------------------------------------------------------------------
// Symbol-range fixpoint over the state machine
// ---------------------------------------------------------------------------

/// Per-state symbol intervals, computed by a worklist fixpoint over the
/// interstate CFG: edge assignments transfer (RHS evaluated in the
/// source environment), edge conditions refine (x < e tightens x's
/// interval on the true branch), joins merge at confluence points and
/// widening kicks in after a few visits of a back-edge target.
class SymbolRanges {
 public:
  static SymbolRanges compute(const ir::SDFG& sdfg);

  /// Environment holding at the *entry* of a state.  Unreachable states
  /// map to an all-top environment over the assigned symbols.
  const Env& at(int state_id) const;

  /// Symbols assigned anywhere on an interstate edge (these do not obey
  /// the ">= 1" free-symbol convention).
  const std::set<std::string>& assigned_symbols() const { return assigned_; }

  std::string to_string() const;

 private:
  std::map<int, Env> envs_;
  Env fallback_;  // all assigned symbols -> top
  std::set<std::string> assigned_;
};

/// Environment for reasoning about a dataflow edge: the state-entry
/// environment extended with the enclosing map parameters' iteration
/// intervals ([begin, last] per parameter, outermost first).
Env edge_env(const ir::State& st, const ir::Edge& e, const Env& state_env);

// ---------------------------------------------------------------------------
// Stride / contiguity classification
// ---------------------------------------------------------------------------

enum class StrideClass {
  Zero,      // invariant in the parameter
  Unit,      // stride exactly 1
  Constant,  // known constant stride != 0, 1
  Affine,    // linear in the parameter with a symbolic coefficient
  Unknown,   // nonlinear or not analyzable
};
const char* stride_class_name(StrideClass c);

struct StrideInfo {
  StrideClass cls = StrideClass::Unknown;
  std::optional<int64_t> stride;  // set for Zero/Unit/Constant
};

/// Stride of a scalar index expression with respect to `param`:
/// idx(param + 1) - idx(param), classified.
StrideInfo stride_of(const sym::Expr& index, const std::string& param);

/// Stride of the flattened row-major address of `subset` into an array
/// with the given shape, with respect to `param`.  This is the quantity
/// that decides contiguity of the innermost loop.
StrideInfo flat_stride(const std::vector<sym::Expr>& shape,
                       const sym::Subset& subset, const std::string& param);

// ---------------------------------------------------------------------------
// Codegen-facing facts
// ---------------------------------------------------------------------------

/// Facts about one map scope that Tier-1 codegen consumes.
struct MapFacts {
  /// State-edge indices whose memlet is proven in-range for every
  /// iteration (bounds checks can be elided).
  std::set<size_t> inrange_edges;
  /// Every non-empty memlet in the scope is proven in-range.
  bool all_in_range = false;
  /// Every array memlet adjacent to the scope's tasklets is unit- or
  /// zero-stride in the innermost parameter (flattened address).
  bool innermost_contiguous = false;
  /// Innermost loop is safe to vectorize: contiguous, no WCR writes,
  /// and every container that is both read and written in the scope is
  /// accessed at identical addresses (no loop-carried flow dependence).
  bool vectorizable = false;
};

/// Analyze one map scope under the given state-entry environment.
MapFacts analyze_map(const ir::SDFG& sdfg, const ir::State& st, int entry,
                     const Env& state_env);

/// DACE_ABSINT knob: Off ("0") disables all absint-driven codegen
/// (guards, restrict, vectorization hints) and restores pre-absint
/// behavior; On (default) emits guards only for unproven accesses; All
/// ("all") guards every access, used by the fuzzer to cross-validate
/// "proven in-range" verdicts dynamically.
enum class Mode { Off, On, All };
Mode mode();

// ---------------------------------------------------------------------------
// Lint entry point (A2xx diagnostics)
// ---------------------------------------------------------------------------

/// Run the absint lint analyses over `sdfg` and every nested SDFG,
/// appending Diagnostics with analysis names:
///   "range"    (A201) memlet not provably in range / provably violating
///   "deadwrite" (A202) write to a transient element never read afterwards
///   "uninit-elem" (A203) read of a transient element no prior write covers
///   "stride"   (A204) non-contiguous innermost access in a parallel map
void lint(const ir::SDFG& sdfg, AnalysisReport& report);

}  // namespace dace::analysis::absint
