// Abstract interpretation over the SDFG state machine (see absint.hpp).
#include "analysis/absint.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <deque>
#include <sstream>

#include "common/obs.hpp"

namespace dace::analysis::absint {

namespace {

using ir::CodeExpr;
using ir::CodeOp;
using sym::Expr;
using sym::Range;
using sym::Subset;

/// Last index a range touches: begin + (size-1)*step.
Expr last_index(const Range& r) {
  if (r.step.is_one()) return r.end - Expr(1);
  return r.begin + (r.size() - Expr(1)) * r.step;
}

/// Guarded substitution: canonicalization constant-folds, and folding a
/// division by a substituted zero throws; treat that as "no result".
std::optional<Expr> try_subs(const Expr& e, const sym::SubstMap& m) {
  try {
    return e.subs(m);
  } catch (const dace::Error&) {
    return std::nullopt;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

bool Interval::equals(const Interval& o) const {
  if (lo.has_value() != o.lo.has_value()) return false;
  if (hi.has_value() != o.hi.has_value()) return false;
  if (lo && !lo->equals(*o.lo)) return false;
  if (hi && !hi->equals(*o.hi)) return false;
  return true;
}

std::string Interval::to_string() const {
  std::string s = "[";
  s += lo ? lo->to_string() : "-inf";
  s += ", ";
  s += hi ? hi->to_string() : "+inf";
  s += "]";
  return s;
}

namespace {

/// Sound bound choice without an environment: endpoints may reference
/// interstate-assigned symbols for which the global ">= 1" convention
/// does not hold, so only equal expressions or constant differences are
/// compared.  Returns the smaller (kind=0) / larger (kind=1) of a and b,
/// or nullopt when incomparable.
std::optional<Expr> pick_bound(const Expr& a, const Expr& b, int kind) {
  if (a.equals(b)) return a;
  Expr d = a - b;
  if (!d.is_constant()) return std::nullopt;
  bool a_smaller = d.constant() < 0;
  if (kind == 0) return a_smaller ? a : b;
  return a_smaller ? b : a;
}

}  // namespace

Interval join(const Interval& a, const Interval& b) {
  Interval r;
  if (a.lo && b.lo) r.lo = pick_bound(*a.lo, *b.lo, 0);
  if (a.hi && b.hi) r.hi = pick_bound(*a.hi, *b.hi, 1);
  return r;
}

Interval widen(const Interval& older, const Interval& newer) {
  Interval r;
  if (older.lo && newer.lo && older.lo->equals(*newer.lo)) r.lo = newer.lo;
  if (older.hi && newer.hi && older.hi->equals(*newer.hi)) r.hi = newer.hi;
  return r;
}

// ---------------------------------------------------------------------------
// Provers
// ---------------------------------------------------------------------------

namespace {

/// True when the global ">= 1" prover may be applied to `e`: every free
/// symbol with an environment entry must itself be proven >= 1 (depth
/// caps mutual references between bounds).
bool global_ok(const Expr& e, const Env& env, int depth) {
  for (const auto& s : e.free_symbols()) {
    auto it = env.find(s);
    if (it == env.end()) continue;  // unmapped: size convention applies
    if (depth <= 0) return false;
    if (!it->second.lo) return false;
    Expr lom1 = *it->second.lo - Expr(1);
    if (!global_ok(lom1, env, depth - 1) || !lom1.provably_nonnegative())
      return false;
  }
  return true;
}

bool proves_nonneg_impl(Expr e, const Env& env, int depth) {
  if (depth < 0) return false;
  for (int round = 0; round < 8; ++round) {
    if (global_ok(e, env, 3) && e.provably_nonnegative()) return true;
    bool changed = false;
    for (const auto& s : e.free_symbols()) {
      auto it = env.find(s);
      if (it == env.end()) continue;
      const Interval& I = it->second;
      // Affine coefficient probe with a fresh shift (avoids folding a
      // division by a substituted constant): e(s+1) - e(s) must be free
      // of s, which for polynomials means e is affine in s; atoms keep
      // s and are skipped.
      auto shifted = try_subs(e, {{s, Expr::symbol(s) + Expr(1)}});
      if (!shifted) continue;
      Expr c = *shifted - e;
      if (c.free_symbols().count(s)) continue;
      // Substitute the worst-case endpoint: minimum of e over the
      // interval is at lo for a nonnegative coefficient, at hi for a
      // nonpositive one.  The coefficient's own sign is proven under
      // the same environment.
      std::optional<Expr> repl;
      if (I.lo && !I.lo->free_symbols().count(s) &&
          proves_nonneg_impl(c, env, depth - 1)) {
        repl = I.lo;
      } else if (I.hi && !I.hi->free_symbols().count(s) &&
                 proves_nonneg_impl(Expr(0) - c, env, depth - 1)) {
        repl = I.hi;
      }
      if (!repl) continue;
      auto e2 = try_subs(e, {{s, *repl}});
      if (!e2 || e2->equals(e)) continue;
      e = *e2;
      changed = true;
      break;  // free_symbols changed; restart the scan
    }
    if (!changed) break;
  }
  return global_ok(e, env, 3) && e.provably_nonnegative();
}

}  // namespace

bool proves_nonneg(const Expr& e, const Env& env) {
  return proves_nonneg_impl(e, env, 4);
}

std::optional<bool> prove_le(const Expr& a, const Expr& b, const Env& env) {
  if (proves_nonneg(b - a, env)) return true;
  if (proves_nonneg(a - b - Expr(1), env)) return false;
  return std::nullopt;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Proven: return "proven";
    case Verdict::Refuted: return "refuted";
    default: return "unknown";
  }
}

// ---------------------------------------------------------------------------
// Interval evaluation
// ---------------------------------------------------------------------------

namespace {

Interval iv_add(const Interval& a, const Interval& b) {
  Interval r;
  if (a.lo && b.lo) r.lo = *a.lo + *b.lo;
  if (a.hi && b.hi) r.hi = *a.hi + *b.hi;
  return r;
}

Interval iv_mul(const Interval& a, const Interval& b, const Env& env) {
  // Constant factor: scale (flip endpoints for a negative factor).
  auto scale = [](const Interval& x, int64_t c) {
    Interval r;
    if (c == 0) return Interval::exact(Expr(0));
    if (c > 0) {
      if (x.lo) r.lo = Expr(c) * *x.lo;
      if (x.hi) r.hi = Expr(c) * *x.hi;
    } else {
      if (x.hi) r.lo = Expr(c) * *x.hi;
      if (x.lo) r.hi = Expr(c) * *x.lo;
    }
    return r;
  };
  auto exact_const = [](const Interval& x) -> std::optional<int64_t> {
    if (x.lo && x.hi && x.lo->is_constant() && x.lo->equals(*x.hi))
      return x.lo->constant();
    return std::nullopt;
  };
  if (auto c = exact_const(a)) return scale(b, *c);
  if (auto c = exact_const(b)) return scale(a, *c);
  // Both provably nonnegative: product of lower/upper bounds.
  if (a.lo && b.lo && proves_nonneg(*a.lo, env) && proves_nonneg(*b.lo, env)) {
    Interval r;
    r.lo = *a.lo * *b.lo;
    if (a.hi && b.hi) r.hi = *a.hi * *b.hi;
    return r;
  }
  return Interval::top();
}

}  // namespace

Interval eval_interval(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case sym::ExprKind::Const:
      return Interval::exact(e);
    case sym::ExprKind::Symbol: {
      auto it = env.find(e.symbol_name());
      if (it != env.end()) return it->second;
      return Interval::at_least(Expr(1));  // global size convention
    }
    case sym::ExprKind::Add: {
      Interval acc = Interval::exact(Expr(0));
      for (const auto& op : e.operands())
        acc = iv_add(acc, eval_interval(op, env));
      return acc;
    }
    case sym::ExprKind::Mul: {
      Interval acc = Interval::exact(Expr(1));
      for (const auto& op : e.operands())
        acc = iv_mul(acc, eval_interval(op, env), env);
      return acc;
    }
    case sym::ExprKind::FloorDiv: {
      auto ops = e.operands();
      Interval a = eval_interval(ops[0], env);
      Interval b = eval_interval(ops[1], env);
      if (a.lo && b.lo && proves_nonneg(*a.lo, env) &&
          proves_nonneg(*b.lo - Expr(1), env)) {
        Interval r;
        r.lo = Expr(0);
        if (a.hi) r.hi = sym::floordiv(*a.hi, *b.lo);
        return r;
      }
      return Interval::top();
    }
    case sym::ExprKind::Mod: {
      // Python-style: for a positive divisor the result is in [0, b-1]
      // regardless of the dividend's sign.
      Interval b = eval_interval(e.operands()[1], env);
      if (b.lo && proves_nonneg(*b.lo - Expr(1), env)) {
        Interval r;
        r.lo = Expr(0);
        if (b.hi) r.hi = *b.hi - Expr(1);
        return r;
      }
      return Interval::top();
    }
    case sym::ExprKind::Min: {
      auto ops = e.operands();
      Interval a = eval_interval(ops[0], env);
      Interval b = eval_interval(ops[1], env);
      Interval r;
      if (a.lo && b.lo) r.lo = sym::min(*a.lo, *b.lo);
      if (a.hi && b.hi) r.hi = sym::min(*a.hi, *b.hi);
      else if (a.hi) r.hi = a.hi;
      else if (b.hi) r.hi = b.hi;
      return r;
    }
    case sym::ExprKind::Max: {
      auto ops = e.operands();
      Interval a = eval_interval(ops[0], env);
      Interval b = eval_interval(ops[1], env);
      Interval r;
      if (a.hi && b.hi) r.hi = sym::max(*a.hi, *b.hi);
      if (a.lo && b.lo) r.lo = sym::max(*a.lo, *b.lo);
      else if (a.lo) r.lo = a.lo;
      else if (b.lo) r.lo = b.lo;
      return r;
    }
  }
  return Interval::top();
}

// ---------------------------------------------------------------------------
// Subset verdicts
// ---------------------------------------------------------------------------

Verdict subset_in_range(const Subset& subset,
                        const std::vector<Expr>& shape, const Env& env) {
  if (subset.dims() != shape.size()) return Verdict::Unknown;
  bool all_ok = true;
  for (size_t d = 0; d < shape.size(); ++d) {
    const Range& r = subset.range(d);
    Expr last = last_index(r);
    // Provable violation: begin <= -1 or last >= shape for every
    // admitted valuation.
    if (proves_nonneg(Expr(0) - r.begin - Expr(1), env) ||
        proves_nonneg(last - shape[d], env)) {
      return Verdict::Refuted;
    }
    if (!proves_nonneg(r.begin, env) ||
        !proves_nonneg(shape[d] - Expr(1) - last, env)) {
      all_ok = false;
    }
  }
  return all_ok ? Verdict::Proven : Verdict::Unknown;
}

std::optional<bool> proves_disjoint(const Subset& a, const Subset& b,
                                    const Env& env) {
  if (auto d = Subset::disjoint(a, b)) return d;
  if (a.dims() != b.dims()) return std::nullopt;
  for (size_t d = 0; d < a.dims(); ++d) {
    Expr la = last_index(a.range(d));
    Expr lb = last_index(b.range(d));
    // Separated in this dimension: a entirely before b or vice versa.
    if (proves_nonneg(b.range(d).begin - la - Expr(1), env)) return true;
    if (proves_nonneg(a.range(d).begin - lb - Expr(1), env)) return true;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Symbol-range fixpoint
// ---------------------------------------------------------------------------

namespace {

Interval lookup(const Env& env, const std::string& name,
                const std::set<std::string>& assigned) {
  auto it = env.find(name);
  if (it != env.end()) return it->second;
  if (assigned.count(name)) return Interval::top();
  return Interval::at_least(Expr(1));
}

void tighten_lo(Interval& I, const Expr& e) {
  if (!I.lo) {
    I.lo = e;
  } else if ((e - *I.lo).provably_nonnegative()) {
    I.lo = e;  // e is the larger (tighter) lower bound
  }
}

void tighten_hi(Interval& I, const Expr& e) {
  if (!I.hi) {
    I.hi = e;
  } else if ((*I.hi - e).provably_nonnegative()) {
    I.hi = e;  // e is the smaller (tighter) upper bound
  }
}

CodeOp flip_cmp(CodeOp op) {
  switch (op) {
    case CodeOp::Lt: return CodeOp::Gt;
    case CodeOp::Le: return CodeOp::Ge;
    case CodeOp::Gt: return CodeOp::Lt;
    case CodeOp::Ge: return CodeOp::Le;
    default: return op;
  }
}

void refine_sym(Env& env, const std::string& name, CodeOp op, const Expr& rhs,
                const std::set<std::string>& assigned) {
  if (rhs.free_symbols().count(name)) return;
  Interval I = lookup(env, name, assigned);
  switch (op) {
    case CodeOp::Lt: tighten_hi(I, rhs - Expr(1)); break;
    case CodeOp::Le: tighten_hi(I, rhs); break;
    case CodeOp::Gt: tighten_lo(I, rhs + Expr(1)); break;
    case CodeOp::Ge: tighten_lo(I, rhs); break;
    case CodeOp::Eq:
      tighten_lo(I, rhs);
      tighten_hi(I, rhs);
      break;
    default: return;
  }
  env[name] = I;
}

/// Refine `env` with the facts a true condition implies (conjunctions
/// and comparisons with a symbol on one side).
void refine_condition(Env& env, const CodeExpr& c,
                      const std::set<std::string>& assigned) {
  if (!c.valid()) return;
  switch (c.op()) {
    case CodeOp::And:
      refine_condition(env, c.args()[0], assigned);
      refine_condition(env, c.args()[1], assigned);
      return;
    case CodeOp::Lt:
    case CodeOp::Le:
    case CodeOp::Gt:
    case CodeOp::Ge:
    case CodeOp::Eq: {
      const CodeExpr& L = c.args()[0];
      const CodeExpr& R = c.args()[1];
      if (L.op() == CodeOp::Sym) {
        if (auto rhs = ir::code_to_sym(R))
          refine_sym(env, L.name(), c.op(), *rhs, assigned);
      }
      if (R.op() == CodeOp::Sym) {
        if (auto lhs = ir::code_to_sym(L))
          refine_sym(env, R.name(), flip_cmp(c.op()), *lhs, assigned);
      }
      return;
    }
    default:
      return;
  }
}

Env join_env(const Env& a, const Env& b, const std::set<std::string>& assigned) {
  Env out;
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  for (const auto& k : keys)
    out[k] = join(lookup(a, k, assigned), lookup(b, k, assigned));
  return out;
}

bool env_equals(const Env& a, const Env& b) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !ita->second.equals(itb->second))
      return false;
  }
  return true;
}

}  // namespace

SymbolRanges SymbolRanges::compute(const ir::SDFG& sdfg) {
  OBS_SPAN("analysis", "absint.ranges");
  SymbolRanges R;
  const auto& edges = sdfg.interstate_edges();
  for (const auto& e : edges)
    for (const auto& [k, v] : e.assignments) R.assigned_.insert(k);
  for (const auto& s : R.assigned_) R.fallback_[s] = Interval::top();

  int start = sdfg.start_state();
  if (!sdfg.state_alive(start)) return R;
  R.envs_[start] = R.fallback_;

  // Transfer function of one interstate edge: condition refinement, then
  // simultaneous assignments evaluated in the pre-assignment env.
  auto transfer = [&](const Env& src_env, const ir::InterstateEdge& e) {
    Env out = src_env;
    refine_condition(out, e.condition, R.assigned_);
    std::vector<std::pair<std::string, Interval>> updates;
    for (const auto& [k, rhs] : e.assignments)
      updates.emplace_back(k, eval_interval(rhs, out));
    for (auto& [k, I] : updates) out[k] = std::move(I);
    return out;
  };

  constexpr int kWidenDelay = 3;
  std::map<int, int> visits;
  std::deque<int> worklist{start};
  std::set<int> queued{start};
  int budget = 8 * (sdfg.num_states() + 1) * ((int)edges.size() + 1) + 64;
  while (!worklist.empty() && budget-- > 0) {
    int s = worklist.front();
    worklist.pop_front();
    queued.erase(s);
    Env env = R.envs_[s];
    for (size_t ei : sdfg.out_interstate(s)) {
      const ir::InterstateEdge& e = edges[ei];
      Env out = transfer(env, e);

      auto it = R.envs_.find(e.dst);
      bool changed;
      if (it == R.envs_.end()) {
        R.envs_[e.dst] = std::move(out);
        changed = true;
      } else {
        Env merged = join_env(it->second, out, R.assigned_);
        if (++visits[e.dst] > kWidenDelay) {
          Env widened;
          for (const auto& [k, I] : merged)
            widened[k] = widen(lookup(it->second, k, R.assigned_), I);
          merged = std::move(widened);
        }
        changed = !env_equals(merged, it->second);
        if (changed) it->second = std::move(merged);
      }
      if (changed && !queued.count(e.dst)) {
        worklist.push_back(e.dst);
        queued.insert(e.dst);
      }
    }
  }

  // Narrowing: widening at loop heads poisons downstream states (the
  // refined [0, N-1] body interval cannot re-join a stale pre-widening
  // iterate).  Recompute each reachable state's env by REPLACING it with
  // the join over its in-edge transfers; predecessors hold sound
  // over-approximations, so the recomputed env is sound too, and any
  // fixed number of passes only sharpens it.
  for (int pass = 0; pass < 2; ++pass) {
    for (int s : sdfg.state_order()) {
      if (s == start) continue;
      std::optional<Env> acc;
      for (size_t ei : sdfg.in_interstate(s)) {
        const ir::InterstateEdge& e = edges[ei];
        auto src_it = R.envs_.find(e.src);
        if (src_it == R.envs_.end()) continue;  // unreachable predecessor
        Env out = transfer(src_it->second, e);
        acc = acc ? join_env(*acc, out, R.assigned_) : std::move(out);
      }
      if (acc) R.envs_[s] = std::move(*acc);
    }
  }
  return R;
}

const Env& SymbolRanges::at(int state_id) const {
  auto it = envs_.find(state_id);
  return it != envs_.end() ? it->second : fallback_;
}

std::string SymbolRanges::to_string() const {
  std::ostringstream os;
  for (const auto& [sid, env] : envs_) {
    os << "state " << sid << ":";
    for (const auto& [k, I] : env) os << " " << k << "=" << I.to_string();
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Scope environments
// ---------------------------------------------------------------------------

namespace {

/// Innermost map entry whose scope contains the edge, or -1.
int edge_scope(const ir::State& st, const ir::Edge& e) {
  if (st.node_as<ir::MapEntry>(e.src)) return e.src;
  return st.scope_of(e.src);
}

/// Map entries enclosing `scope` (inclusive), outermost first.
std::vector<const ir::MapEntry*> scope_chain(const ir::State& st, int scope) {
  std::vector<const ir::MapEntry*> chain;
  while (scope >= 0) {
    chain.push_back(st.node_as<const ir::MapEntry>(scope));
    scope = st.scope_of(scope);
  }
  return {chain.rbegin(), chain.rend()};
}

}  // namespace

Env edge_env(const ir::State& st, const ir::Edge& e, const Env& state_env) {
  Env env = state_env;
  for (const auto* me : scope_chain(st, edge_scope(st, e))) {
    if (!me) continue;
    for (size_t i = 0; i < me->params.size() && i < me->range.dims(); ++i) {
      const Range& r = me->range.range(i);
      env[me->params[i]] = Interval{r.begin, last_index(r)};
    }
  }
  return env;
}

// ---------------------------------------------------------------------------
// Stride classification
// ---------------------------------------------------------------------------

const char* stride_class_name(StrideClass c) {
  switch (c) {
    case StrideClass::Zero: return "zero";
    case StrideClass::Unit: return "unit";
    case StrideClass::Constant: return "constant";
    case StrideClass::Affine: return "affine";
    default: return "unknown";
  }
}

StrideInfo stride_of(const Expr& index, const std::string& param) {
  if (!index.free_symbols().count(param)) return {StrideClass::Zero, 0};
  auto shifted = try_subs(index, {{param, Expr::symbol(param) + Expr(1)}});
  if (!shifted) return {StrideClass::Unknown, std::nullopt};
  Expr d = *shifted - index;
  if (d.free_symbols().count(param)) return {StrideClass::Unknown, std::nullopt};
  if (d.is_constant()) {
    int64_t c = d.constant();
    if (c == 0) return {StrideClass::Zero, 0};
    if (c == 1) return {StrideClass::Unit, 1};
    return {StrideClass::Constant, c};
  }
  return {StrideClass::Affine, std::nullopt};
}

StrideInfo flat_stride(const std::vector<Expr>& shape, const Subset& subset,
                       const std::string& param) {
  if (subset.dims() != shape.size())
    return {StrideClass::Unknown, std::nullopt};
  if (shape.empty()) return {StrideClass::Zero, 0};
  // Row-major strides, then the flattened begin address.
  std::vector<Expr> strides(shape.size(), Expr(1));
  for (size_t d = shape.size(); d-- > 1;) strides[d - 1] = strides[d] * shape[d];
  Expr flat(0);
  for (size_t d = 0; d < shape.size(); ++d)
    flat = flat + subset.range(d).begin * strides[d];
  return stride_of(flat, param);
}

// ---------------------------------------------------------------------------
// Map facts for codegen
// ---------------------------------------------------------------------------

namespace {

/// True if the edge lies inside the scope of map entry `entry`
/// (including edges touching the entry's inner side or the exit).
bool edge_inside(const ir::State& st, const ir::Edge& e, int entry) {
  int sc = edge_scope(st, e);
  while (sc >= 0) {
    if (sc == entry) return true;
    sc = st.scope_of(sc);
  }
  return false;
}

}  // namespace

MapFacts analyze_map(const ir::SDFG& sdfg, const ir::State& st, int entry,
                     const Env& state_env) {
  MapFacts f;
  const auto* me = st.node_as<const ir::MapEntry>(entry);
  if (!me || me->params.empty()) return f;

  bool all_ok = true;
  bool nested_maps = false;
  for (int nid : st.scope_nodes(entry)) {
    if (st.node_as<const ir::MapEntry>(nid)) nested_maps = true;
  }

  // Per-container load/store footprints adjacent to compute nodes, for
  // the vectorization hazard check.
  std::map<std::string, std::vector<Subset>> loads, stores;
  bool any_wcr = false;
  bool contiguous = true;
  const std::string& inner = me->params.back();

  for (size_t ei = 0; ei < st.edges().size(); ++ei) {
    const ir::Edge& e = st.edges()[ei];
    if (!edge_inside(st, e, entry)) continue;
    if (e.memlet.empty()) continue;
    if (!sdfg.has_array(e.memlet.data)) {
      all_ok = false;
      continue;
    }
    const ir::DataDesc& d = sdfg.array(e.memlet.data);
    if (d.is_stream) {
      all_ok = false;
      continue;
    }
    if (d.rank() == 0) {
      f.inrange_edges.insert(ei);  // scalars are trivially in range
      continue;
    }
    if (e.memlet.dynamic || e.memlet.subset.dims() != d.rank()) {
      all_ok = false;
      continue;
    }
    Env env = edge_env(st, e, state_env);
    if (subset_in_range(e.memlet.subset, d.shape, env) == Verdict::Proven) {
      f.inrange_edges.insert(ei);
    } else {
      all_ok = false;
    }
    // Stride facts only matter for tasklet/library-adjacent memlets
    // (these become the loads and stores of the generated loop body).
    const ir::Node* src = st.alive(e.src) ? st.node(e.src) : nullptr;
    const ir::Node* dst = st.alive(e.dst) ? st.node(e.dst) : nullptr;
    bool is_load = dst && (dst->kind == ir::NodeKind::Tasklet ||
                           dst->kind == ir::NodeKind::Library);
    bool is_store = src && (src->kind == ir::NodeKind::Tasklet ||
                            src->kind == ir::NodeKind::Library);
    if (!is_load && !is_store) continue;
    if (e.memlet.wcr != ir::WCR::None) any_wcr = true;
    StrideInfo si = flat_stride(d.shape, e.memlet.subset, inner);
    if (is_store) {
      stores[e.memlet.data].push_back(e.memlet.subset);
      if (si.cls != StrideClass::Unit) contiguous = false;
    } else {
      loads[e.memlet.data].push_back(e.memlet.subset);
      if (si.cls != StrideClass::Unit && si.cls != StrideClass::Zero)
        contiguous = false;
    }
  }
  f.all_in_range = all_ok;
  if (nested_maps) return f;  // only innermost scopes get loop facts
  f.innermost_contiguous = contiguous && !stores.empty();

  // Vectorizable: contiguous, no WCR, and containers that are both read
  // and written are accessed at identical addresses (distance-0 flow
  // dependences only).
  bool rw_same = true;
  for (const auto& [name, ws] : stores) {
    auto it = loads.find(name);
    if (it == loads.end()) continue;
    for (const auto& r : it->second)
      for (const auto& w : ws)
        if (!r.equals(w)) rw_same = false;
  }
  f.vectorizable = f.innermost_contiguous && !any_wcr && rw_same;
  return f;
}

Mode mode() {
  const char* env = std::getenv("DACE_ABSINT");
  if (!env || !*env) return Mode::On;
  std::string v(env);
  if (v == "0" || v == "off") return Mode::Off;
  if (v == "all") return Mode::All;
  return Mode::On;
}

// ---------------------------------------------------------------------------
// Lint (A201..A204)
// ---------------------------------------------------------------------------

namespace {

/// Transients the element liveness tracks (mirrors defuse.cpp).
bool tracked(const ir::DataDesc& d) {
  return d.transient && !d.is_stream && d.lifetime == ir::Lifetime::Scope;
}

/// Widen `s` over var in [lo, hi] (inclusive): monotonicity decided by
/// the sign of the affine coefficient under `env`; nullopt when a bound
/// is not affine or not provably monotone.  The result is a unit-step
/// hull, a sound over-approximation of the union over all var values.
std::optional<Subset> widen_subset(const Subset& s, const std::string& var,
                                   const Expr& lo, const Expr& hi,
                                   const Env& env) {
  std::vector<Range> rs;
  for (size_t d = 0; d < s.dims(); ++d) {
    const Range& r = s.range(d);
    if (r.step.free_symbols().count(var)) return std::nullopt;
    bool bhas = r.begin.free_symbols().count(var) > 0;
    bool ehas = r.end.free_symbols().count(var) > 0;
    if (!bhas && !ehas) {
      rs.push_back(r);
      continue;
    }
    auto coef_of = [&](const Expr& e) -> std::optional<Expr> {
      auto shifted = try_subs(e, {{var, Expr::symbol(var) + Expr(1)}});
      if (!shifted) return std::nullopt;
      Expr c = *shifted - e;
      if (c.free_symbols().count(var)) return std::nullopt;  // not affine
      return c;
    };
    auto cb = coef_of(r.begin);
    auto ce = coef_of(r.end);
    if (!cb || !ce) return std::nullopt;
    sym::SubstMap L{{var, lo}}, H{{var, hi}};
    auto bl = try_subs(r.begin, L), bh = try_subs(r.begin, H);
    auto el = try_subs(r.end, L), eh = try_subs(r.end, H);
    if (!bl || !bh || !el || !eh) return std::nullopt;
    if (proves_nonneg(*cb, env) && proves_nonneg(*ce, env)) {
      rs.emplace_back(*bl, *eh);
    } else if (proves_nonneg(Expr(0) - *cb, env) &&
               proves_nonneg(Expr(0) - *ce, env)) {
      rs.emplace_back(*bh, *el);
    } else {
      return std::nullopt;
    }
  }
  return Subset(std::move(rs));
}

/// One access (read or write) of a container, reduced to state level:
/// the memlet subset widened over every enclosing map parameter and
/// every interstate-assigned symbol (using its global interval), so two
/// footprints from different states are comparable.  nullopt = unknown.
struct StateAccess {
  int state = -1;
  size_t edge = SIZE_MAX;
  int access_node = -1;  // the access node touched
  std::optional<Subset> foot;
};

struct ContainerAccesses {
  std::vector<StateAccess> reads, writes;
};

/// Global interval of every interstate-assigned symbol: join over all
/// state environments.
Env global_assigned_env(const ir::SDFG& sdfg, const SymbolRanges& ranges) {
  Env out;
  for (const auto& s : ranges.assigned_symbols()) {
    bool first = true;
    Interval acc;
    for (int sid : sdfg.state_ids()) {
      Interval I = lookup(ranges.at(sid), s, ranges.assigned_symbols());
      acc = first ? I : join(acc, I);
      first = false;
    }
    out[s] = acc;
  }
  return out;
}

std::optional<Subset> state_footprint(const ir::State& st, const ir::Edge& e,
                                      const Env& state_env,
                                      const Env& global_env,
                                      const std::set<std::string>& assigned) {
  if (e.memlet.dynamic) return std::nullopt;
  Subset s = e.memlet.subset;
  Env env = edge_env(st, e, state_env);
  // Widen over map parameters, innermost first (outer ranges may appear
  // in inner bounds, so inner parameters must be eliminated first).
  std::vector<const ir::MapEntry*> chain = scope_chain(st, edge_scope(st, e));
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ir::MapEntry* me = *it;
    if (!me) return std::nullopt;
    for (size_t i = me->params.size(); i-- > 0;) {
      if (i >= me->range.dims()) return std::nullopt;
      const Range& r = me->range.range(i);
      auto w = widen_subset(s, me->params[i], r.begin, last_index(r), env);
      if (!w) return std::nullopt;
      s = std::move(*w);
    }
  }
  // Widen out interstate-assigned symbols: their value at this access
  // may differ from their value at any other state, so only the global
  // interval is sound for cross-state comparison.
  for (int guard = 0; guard < 16; ++guard) {
    std::set<std::string> remaining;
    for (const auto& r : s.ranges()) {
      r.begin.free_symbols(remaining);
      r.end.free_symbols(remaining);
      r.step.free_symbols(remaining);
    }
    std::string next;
    for (const auto& name : remaining) {
      if (assigned.count(name)) {
        next = name;
        break;
      }
    }
    if (next.empty()) return s;
    auto it = global_env.find(next);
    if (it == global_env.end() || !it->second.lo || !it->second.hi)
      return std::nullopt;
    auto w = widen_subset(s, next, *it->second.lo, *it->second.hi, global_env);
    if (!w) return std::nullopt;
    s = std::move(*w);
  }
  return std::nullopt;  // widening did not converge
}

/// Forward-reachability closure over the interstate CFG: after[s] is the
/// set of states reachable from s by one or more edges (s itself only
/// when it lies on a cycle).
std::map<int, std::set<int>> reachable_after(const ir::SDFG& sdfg) {
  std::map<int, std::vector<int>> succ;
  for (const auto& e : sdfg.interstate_edges()) succ[e.src].push_back(e.dst);
  std::map<int, std::set<int>> after;
  for (int sid : sdfg.state_ids()) {
    std::deque<int> q(succ[sid].begin(), succ[sid].end());
    auto& out = after[sid];
    while (!q.empty()) {
      int t = q.front();
      q.pop_front();
      if (!out.insert(t).second) continue;
      for (int n : succ[t]) q.push_back(n);
    }
  }
  return after;
}

Diagnostic make_diag(const ir::SDFG& sdfg, const char* analysis,
                     Severity sev, int state, int node,
                     const std::string& container, const std::string& memlet,
                     std::string message, std::string hint) {
  Diagnostic d;
  d.severity = sev;
  d.analysis = analysis;
  d.sdfg = sdfg.name();
  d.state = state;
  d.node = node;
  d.container = container;
  d.memlet = memlet;
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

/// Existence check for A201.  subset_in_range refutes only when EVERY
/// iteration violates; a map that walks out of bounds at its last
/// iteration (A[i+1] over [0, N)) is Unknown under the for-all reading.
/// Map ranges are exact, so their endpoints are attained whenever the
/// range is provably non-empty — substituting the in-scope params at
/// their endpoint corners and proving a violation there proves one
/// actually happens.
bool corner_violation(const ir::State& st, const ir::Edge& e,
                      const ir::DataDesc& desc, const Env& state_env) {
  std::vector<std::pair<std::string, std::array<Expr, 2>>> params;
  Env env = state_env;
  for (const auto* me : scope_chain(st, edge_scope(st, e))) {
    if (!me) continue;
    for (size_t i = 0; i < me->params.size() && i < me->range.dims(); ++i) {
      const Range& r = me->range.range(i);
      Expr last = last_index(r);
      // Endpoints are attained only if the range is non-empty.
      if (!proves_nonneg(last - r.begin, env)) return false;
      params.push_back({me->params[i], {r.begin, last}});
      env[me->params[i]] = Interval{r.begin, last};
    }
  }
  if (params.size() > 4) return false;  // corner blow-up guard
  size_t corners = size_t{1} << params.size();
  for (size_t c = 0; c < corners; ++c) {
    std::map<std::string, Expr> sub;
    for (size_t p = 0; p < params.size(); ++p)
      sub.emplace(params[p].first, params[p].second[(c >> p) & 1]);
    for (size_t d = 0; d < desc.rank(); ++d) {
      const Range& r = e.memlet.subset.range(d);
      auto b = try_subs(r.begin, sub);
      auto l = try_subs(last_index(r), sub);
      if (!b || !l) continue;
      if (proves_nonneg(Expr(-1) - *b, env)) return true;  // begin <= -1
      if (proves_nonneg(*l - desc.shape[d], env)) return true;  // last >= shape
    }
  }
  return false;
}

/// A201: per-memlet range verdicts under the interval environment.
void lint_ranges(const ir::SDFG& sdfg, const SymbolRanges& ranges,
                 AnalysisReport& report) {
  OBS_SPAN("analysis", "absint.range-lint");
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (const auto& e : st.edges()) {
      const ir::Memlet& m = e.memlet;
      if (m.empty() || m.dynamic || !sdfg.has_array(m.data)) continue;
      const ir::DataDesc& desc = sdfg.array(m.data);
      if (desc.is_stream || desc.rank() == 0) continue;
      if (m.subset.dims() != desc.rank()) continue;
      Env env = edge_env(st, e, ranges.at(sid));
      Verdict v = subset_in_range(m.subset, desc.shape, env);
      if (v == Verdict::Proven) continue;
      bool refuted = v == Verdict::Refuted ||
                     corner_violation(st, e, desc, ranges.at(sid));
      report.add(make_diag(
          sdfg, "range", refuted ? Severity::Error : Severity::Warning, sid,
          e.dst, m.data, m.to_string(),
          refuted ? "access provably out of range under interval analysis"
                  : "cannot prove access in range under interval analysis",
          refuted ? "shrink the subset or the producing map/loop range"
                  : "add a symbol relation (loop bound or interstate "
                    "condition) that bounds the offending index"));
    }
  }
}

/// A204: non-contiguous innermost accesses inside parallel (hot) maps.
void lint_strides(const ir::SDFG& sdfg, AnalysisReport& report) {
  OBS_SPAN("analysis", "absint.stride-lint");
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      const auto* me = st.node_as<const ir::MapEntry>(nid);
      if (!me || me->params.empty()) continue;
      // Innermost maps only (no nested map inside this scope).
      bool innermost = true;
      for (int inner : st.scope_nodes(nid))
        if (st.node_as<const ir::MapEntry>(inner)) innermost = false;
      if (!innermost) continue;
      // Hot: this map or any enclosing one has a parallel schedule.
      bool hot = false;
      for (const auto* c : scope_chain(st, nid))
        if (c && c->schedule != ir::Schedule::Sequential) hot = true;
      if (!hot) continue;
      const std::string& inner_param = me->params.back();
      for (const auto& e : st.edges()) {
        if (!edge_inside(st, e, nid) || e.memlet.empty()) continue;
        if (!sdfg.has_array(e.memlet.data)) continue;
        const ir::DataDesc& d = sdfg.array(e.memlet.data);
        if (d.is_stream || d.rank() == 0) continue;
        const ir::Node* src = st.alive(e.src) ? st.node(e.src) : nullptr;
        const ir::Node* dst = st.alive(e.dst) ? st.node(e.dst) : nullptr;
        bool compute = (src && (src->kind == ir::NodeKind::Tasklet ||
                                src->kind == ir::NodeKind::Library)) ||
                       (dst && (dst->kind == ir::NodeKind::Tasklet ||
                                dst->kind == ir::NodeKind::Library));
        if (!compute) continue;
        StrideInfo si = flat_stride(d.shape, e.memlet.subset, inner_param);
        if (si.cls == StrideClass::Unit || si.cls == StrideClass::Zero)
          continue;
        std::string detail = stride_class_name(si.cls);
        if (si.stride) detail += " (" + std::to_string(*si.stride) + ")";
        report.add(make_diag(
            sdfg, "stride", Severity::Warning, sid, e.dst, e.memlet.data,
            e.memlet.to_string(),
            "non-contiguous innermost access in a parallel map: " + detail +
                " stride in parameter '" + inner_param + "'",
            "interchange the map parameters or transpose the container so "
            "the innermost parameter walks the last dimension"));
      }
    }
  }
}

/// A202 dead element writes / A203 reads of never-written elements.
void lint_elements(const ir::SDFG& sdfg, const SymbolRanges& ranges,
                   AnalysisReport& report) {
  OBS_SPAN("analysis", "absint.liveness-lint");
  Env global_env = global_assigned_env(sdfg, ranges);
  const auto& assigned = ranges.assigned_symbols();

  std::map<std::string, ContainerAccesses> acc;
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (size_t ei = 0; ei < st.edges().size(); ++ei) {
      const ir::Edge& e = st.edges()[ei];
      if (e.memlet.empty()) continue;
      if (const auto* a = st.node_as<const ir::AccessNode>(e.src)) {
        if (a->data == e.memlet.data) {
          acc[a->data].reads.push_back(
              {sid, ei, e.src,
               state_footprint(st, e, ranges.at(sid), global_env, assigned)});
        }
      }
      if (const auto* a = st.node_as<const ir::AccessNode>(e.dst)) {
        if (a->data == e.memlet.data) {
          acc[a->data].writes.push_back(
              {sid, ei, e.dst,
               state_footprint(st, e, ranges.at(sid), global_env, assigned)});
        }
      }
    }
  }

  std::map<int, std::set<int>> after = reachable_after(sdfg);

  for (const auto& [name, ca] : acc) {
    if (!sdfg.has_array(name)) continue;
    const ir::DataDesc& desc = sdfg.array(name);
    if (!tracked(desc) || desc.rank() == 0) continue;

    // A203: a read none of whose predecessors' writes can touch it.
    for (const auto& r : ca.reads) {
      if (!r.foot) continue;
      const ir::State& st = sdfg.state(r.state);
      bool any_prior = false;
      bool all_disjoint = true;
      for (const auto& w : ca.writes) {
        bool prior = after.at(w.state).count(r.state) > 0;
        if (!prior && w.state == r.state) {
          // Same state: the write reaches this read only through the
          // dataflow graph.
          prior = w.access_node == r.access_node ||
                  st.has_path(w.access_node, r.access_node);
        }
        if (!prior) continue;
        any_prior = true;
        if (!w.foot) {
          all_disjoint = false;
          break;
        }
        auto dj = proves_disjoint(*r.foot, *w.foot, Env{});
        if (!dj || !*dj) {
          all_disjoint = false;
          break;
        }
      }
      // No prior write at all is the container-level A103 error; the
      // element-level finding is the subtler "writes exist, none covers".
      if (!any_prior || !all_disjoint) continue;
      const ir::Edge& e = st.edges()[r.edge];
      report.add(make_diag(
          sdfg, "uninit-elem", Severity::Error, r.state, r.access_node, name,
          e.memlet.to_string(),
          "read of transient elements no prior write touches (footprint " +
              r.foot->to_string() + ")",
          "write the elements before reading them or shrink the read"));
    }

    // A202: a write whose elements are provably never read afterwards.
    for (const auto& w : ca.writes) {
      if (!w.foot) continue;
      const ir::State& st = sdfg.state(w.state);
      // A read downstream in the same state keeps the write alive.
      bool live_in_state = false;
      for (const auto& r : ca.reads) {
        if (r.state != w.state) continue;
        if (r.access_node == w.access_node ||
            st.has_path(w.access_node, r.access_node)) {
          live_in_state = true;
          break;
        }
      }
      if (live_in_state) continue;
      bool in_cycle = after.at(w.state).count(w.state) > 0;
      bool dead = true;
      for (const auto& r : ca.reads) {
        bool later = after.at(w.state).count(r.state) > 0 ||
                     (in_cycle && r.state == w.state);
        if (!later) continue;
        if (!r.foot) {
          dead = false;
          break;
        }
        auto dj = proves_disjoint(*w.foot, *r.foot, Env{});
        if (!dj || !*dj) {
          dead = false;
          break;
        }
      }
      if (!dead) continue;
      const ir::Edge& e = st.edges()[w.edge];
      report.add(make_diag(
          sdfg, "deadwrite", Severity::Warning, w.state, w.access_node, name,
          e.memlet.to_string(),
          "dead write: transient elements (footprint " + w.foot->to_string() +
              ") are never read afterwards",
          "remove the producing computation or shrink the written subset"));
    }
  }
}

void lint_into(const ir::SDFG& sdfg, AnalysisReport& report) {
  SymbolRanges ranges = SymbolRanges::compute(sdfg);
  lint_ranges(sdfg, ranges, report);
  lint_strides(sdfg, report);
  lint_elements(sdfg, ranges, report);
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      if (const auto* nn = st.node_as<ir::NestedSDFGNode>(nid)) {
        if (nn->sdfg) lint_into(*nn->sdfg, report);
      }
    }
  }
}

}  // namespace

void lint(const ir::SDFG& sdfg, AnalysisReport& report) {
  OBS_SPAN("analysis", "absint");
  lint_into(sdfg, report);
}

}  // namespace dace::analysis::absint
