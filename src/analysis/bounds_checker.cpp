// Memlet bounds checker.
//
// Every memlet subset must satisfy 0 <= begin and last-accessed index
// < shape[d] in every dimension.  Inside map scopes the subset is a
// function of the map parameters, whose global ">= 1" symbol assumption
// does not hold (parameters start at 0), so the checker substitutes the
// parameters by the *corners* of their iteration ranges -- for the
// multilinear index expressions the frontend and transformations
// produce, extremes are attained at corners, and every corner is a real
// iteration point.  A provable violation at any corner is an error; a
// bound that cannot be proven at some corner is a warning.
#include <sstream>

#include "analysis/analysis.hpp"

namespace dace::analysis {

namespace {

using sym::Expr;

// Cap on enumerated corners (2^params); deeper nests are skipped rather
// than checked imprecisely.
constexpr size_t kMaxCornerParams = 10;

/// Innermost map entry whose scope contains the edge, or -1.
int edge_scope(const ir::State& st, const ir::Edge& e) {
  if (st.node_as<ir::MapEntry>(e.src)) return e.src;
  return st.scope_of(e.src);
}

/// Map entries enclosing `scope` (inclusive), outermost first.
std::vector<const ir::MapEntry*> scope_chain(const ir::State& st, int scope) {
  std::vector<const ir::MapEntry*> chain;
  while (scope >= 0) {
    chain.push_back(st.node_as<const ir::MapEntry>(scope));
    scope = st.scope_of(scope);
  }
  return {chain.rbegin(), chain.rend()};
}

/// Last index a range touches: begin + (size-1)*step.
Expr last_index(const sym::Range& r) {
  if (r.step.is_one()) return r.end - Expr(1);
  return r.begin + (r.size() - Expr(1)) * r.step;
}

enum class DimCheck { Ok, Violation, Unknown };

DimCheck check_dim(const Expr& begin, const Expr& last, const Expr& shape) {
  // Provable violation first: begin <= -1 or last >= shape.
  if ((-begin).provably_positive()) return DimCheck::Violation;
  if ((last - shape).provably_nonnegative()) return DimCheck::Violation;
  if (begin.provably_nonnegative() &&
      (shape - Expr(1) - last).provably_nonnegative()) {
    return DimCheck::Ok;
  }
  return DimCheck::Unknown;
}

void check_edge(const ir::SDFG& sdfg, const ir::State& st, int sid,
                const ir::Edge& e, AnalysisReport& report) {
  const ir::Memlet& m = e.memlet;
  if (m.empty() || m.dynamic) return;
  const ir::DataDesc& desc = sdfg.array(m.data);
  if (desc.is_stream || desc.rank() == 0) return;
  if (m.subset.dims() != desc.rank()) return;  // structural error, not ours

  std::vector<const ir::MapEntry*> chain = scope_chain(st, edge_scope(st, e));
  std::vector<std::pair<std::string, sym::Range>> params;
  for (const auto* me : chain) {
    for (size_t i = 0; i < me->params.size(); ++i)
      params.emplace_back(me->params[i], me->range.range(i));
  }
  if (params.size() > kMaxCornerParams) return;

  // All corner substitutions, built outermost-in so inner ranges that
  // reference outer parameters get concrete corner values too.
  std::vector<sym::SubstMap> corners;
  for (size_t mask = 0; mask < (size_t{1} << params.size()); ++mask) {
    sym::SubstMap corner;
    for (size_t k = 0; k < params.size(); ++k) {
      sym::Range r = params[k].second.subs(corner);
      corner[params[k].first] = (mask >> k) & 1 ? last_index(r) : r.begin;
    }
    corners.push_back(std::move(corner));
  }

  for (size_t d = 0; d < desc.rank(); ++d) {
    const sym::Range& r = m.subset.range(d);
    Expr last = last_index(r);
    bool violation = false;
    bool unknown = false;
    for (const auto& corner : corners) {
      DimCheck c = check_dim(r.begin.subs(corner), last.subs(corner),
                             desc.shape[d].subs(corner));
      violation |= c == DimCheck::Violation;
      unknown |= c == DimCheck::Unknown;
    }
    if (!violation && !unknown) continue;

    Diagnostic diag;
    diag.severity = violation ? Severity::Error : Severity::Warning;
    diag.analysis = "bounds";
    diag.sdfg = sdfg.name();
    diag.state = sid;
    diag.node = e.dst;
    diag.container = m.data;
    diag.memlet = m.to_string();
    std::ostringstream msg;
    if (violation) {
      msg << "access provably out of bounds in dimension " << d << " (shape "
          << desc.shape[d].to_string() << ")";
    } else {
      msg << "cannot prove access within bounds in dimension " << d
          << " (shape " << desc.shape[d].to_string() << ")";
    }
    diag.message = msg.str();
    diag.hint = violation
                    ? "shrink the memlet subset or the map range to fit the "
                      "container shape"
                    : "tighten the subset bounds or add the missing symbol "
                      "relation to make the bound provable";
    report.add(std::move(diag));
    break;  // one finding per memlet is enough to locate the problem
  }
}

}  // namespace

void check_bounds(const ir::SDFG& sdfg, AnalysisReport& report) {
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (const auto& e : st.edges()) check_edge(sdfg, st, sid, e, report);
  }
}

}  // namespace dace::analysis
