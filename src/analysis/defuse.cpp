// Interstate def-use analysis: reaching definitions per container over
// the state machine.
//
// Two fixpoint passes over the control-flow graph of states:
//   forward:  which containers MAY / MUST have been written when a state
//             is entered  -> reads of never-written transients (error),
//             reads uninitialized on some path (warning);
//   backward: which containers are live after a state -> writes to
//             transients that no later state (and no later node in the
//             same state) reads are dead writes (warning).
// Persistent-lifetime transients keep their value across invocations and
// streams have FIFO semantics, so both are exempt.
#include <algorithm>

#include "analysis/analysis.hpp"

namespace dace::analysis {

namespace {

struct StateFacts {
  // Containers with an access node that reads (has out-edges) without a
  // preceding write in the same state ("upward-exposed" reads).
  std::set<std::string> ue_reads;
  // Containers read anywhere in the state.
  std::set<std::string> reads;
  // Containers written anywhere in the state.
  std::set<std::string> writes;
  // Containers whose written subset provably covers the whole shape.
  std::set<std::string> full_writes;
  // Access nodes (node id, container) that write but are never read from
  // within the state: dead-write candidates.
  std::vector<std::pair<int, std::string>> sink_writes;
};

/// True if every out-edge of access node `nid` feeds a library node that
/// also writes the same container: the in-place update idiom (e.g. the
/// request slots of dace.comm.Isend).  Such "reads" only sequence the
/// mutation of storage whose prior contents are unspecified (np.empty),
/// so they are not upward-exposed value reads.
bool only_inout_reads(const ir::State& st, int nid, const std::string& data) {
  for (const auto* e : st.out_edges(nid)) {
    const ir::Node* dst = st.node(e->dst);
    if (dst->kind != ir::NodeKind::Library) return false;
    bool writes_back = false;
    for (const auto* oe : st.out_edges(e->dst)) {
      if (!oe->memlet.empty() && oe->memlet.data == data) {
        writes_back = true;
        break;
      }
    }
    if (!writes_back) return false;
  }
  return true;
}

StateFacts collect_facts(const ir::SDFG& sdfg, const ir::State& st) {
  StateFacts f;
  for (int nid : st.node_ids()) {
    const auto* a = st.node_as<const ir::AccessNode>(nid);
    if (!a) continue;
    bool has_in = st.in_degree(nid) > 0;
    bool has_out = st.out_degree(nid) > 0;
    if (has_out) {
      f.reads.insert(a->data);
      if (!has_in && !only_inout_reads(st, nid, a->data))
        f.ue_reads.insert(a->data);
    }
    if (has_in) {
      f.writes.insert(a->data);
      if (!has_out) f.sink_writes.emplace_back(nid, a->data);
      const ir::DataDesc& d = sdfg.array(a->data);
      sym::Subset full = sym::Subset::full(d.shape);
      for (const auto* e : st.in_edges(nid)) {
        if (!e->memlet.empty() && e->memlet.data == a->data &&
            e->memlet.subset.covers(full)) {
          f.full_writes.insert(a->data);
        }
      }
    }
  }
  return f;
}

/// Transients the analysis tracks (persistent and stream containers are
/// exempt; non-transients are inputs/outputs and defined externally).
bool tracked(const ir::DataDesc& d) {
  return d.transient && !d.is_stream && d.lifetime == ir::Lifetime::Scope;
}

}  // namespace

void analyze_defuse(const ir::SDFG& sdfg, AnalysisReport& report) {
  std::vector<int> ids = sdfg.state_ids();
  if (ids.empty()) return;
  std::map<int, StateFacts> facts;
  for (int sid : ids) facts[sid] = collect_facts(sdfg, sdfg.state(sid));

  std::map<int, std::vector<int>> preds, succs;
  for (const auto& e : sdfg.interstate_edges()) {
    preds[e.dst].push_back(e.src);
    succs[e.src].push_back(e.dst);
  }

  std::set<std::string> all;
  for (const auto& [name, d] : sdfg.arrays()) all.insert(name);

  // Forward: MAY-written (union over predecessors, grows from empty) and
  // MUST-written (intersection, shrinks from the full set).
  std::map<int, std::set<std::string>> may_in, may_out, must_in, must_out;
  for (int sid : ids) {
    may_out[sid] = facts[sid].writes;
    must_in[sid] = sid == sdfg.start_state() ? std::set<std::string>{} : all;
    must_out[sid] = all;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int sid : ids) {
      std::set<std::string> min, mustv;
      bool first = true;
      for (int p : preds[sid]) {
        min.insert(may_out[p].begin(), may_out[p].end());
        if (first) {
          mustv = must_out[p];
          first = false;
        } else {
          std::set<std::string> inter;
          std::set_intersection(mustv.begin(), mustv.end(),
                                must_out[p].begin(), must_out[p].end(),
                                std::inserter(inter, inter.begin()));
          mustv = std::move(inter);
        }
      }
      if (sid == sdfg.start_state()) mustv.clear();
      std::set<std::string> mout = min;
      mout.insert(facts[sid].writes.begin(), facts[sid].writes.end());
      std::set<std::string> uout = mustv;
      uout.insert(facts[sid].writes.begin(), facts[sid].writes.end());
      if (min != may_in[sid] || mout != may_out[sid] ||
          mustv != must_in[sid] || uout != must_out[sid]) {
        changed = true;
        may_in[sid] = std::move(min);
        may_out[sid] = std::move(mout);
        must_in[sid] = std::move(mustv);
        must_out[sid] = std::move(uout);
      }
    }
  }

  for (int sid : ids) {
    for (const auto& c : facts[sid].ue_reads) {
      if (!tracked(sdfg.array(c))) continue;
      bool maybe = may_in[sid].count(c) > 0;
      bool must = must_in[sid].count(c) > 0;
      if (maybe && must) continue;
      Diagnostic d;
      d.severity = maybe ? Severity::Warning : Severity::Error;
      d.analysis = "defuse";
      d.sdfg = sdfg.name();
      d.state = sid;
      d.container = c;
      d.message = maybe
                      ? "transient may be read uninitialized (not written on "
                        "every path to this state)"
                      : "read of never-written transient";
      d.hint = "initialize the transient before this state or remove the read";
      report.add(std::move(d));
    }
  }

  // Backward liveness for dead-write detection.
  std::map<int, std::set<std::string>> live_in, live_out;
  changed = true;
  while (changed) {
    changed = false;
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      int sid = *it;
      std::set<std::string> lout;
      for (int s : succs[sid])
        lout.insert(live_in[s].begin(), live_in[s].end());
      std::set<std::string> lin = facts[sid].reads;
      for (const auto& c : lout) {
        if (!facts[sid].full_writes.count(c)) lin.insert(c);
      }
      if (lout != live_out[sid] || lin != live_in[sid]) {
        changed = true;
        live_out[sid] = std::move(lout);
        live_in[sid] = std::move(lin);
      }
    }
  }

  for (int sid : ids) {
    for (const auto& [nid, c] : facts[sid].sink_writes) {
      if (!tracked(sdfg.array(c))) continue;
      if (live_out[sid].count(c)) continue;
      // Another access node of the same container in this state may read
      // the value through an unordered path; stay silent then.
      if (facts[sid].reads.count(c)) continue;
      Diagnostic d;
      d.severity = Severity::Warning;
      d.analysis = "defuse";
      d.sdfg = sdfg.name();
      d.state = sid;
      d.node = nid;
      d.container = c;
      d.message = "dead write: transient is never read afterwards";
      d.hint = "remove the producing computation or the transient itself";
      report.add(std::move(d));
    }
  }
}

}  // namespace dace::analysis
