// Symbolic race detector for map scopes.
//
// A map declares its iterations parallel (Section 2.3); two iterations
// i != i' race on a container when their write subsets intersect and the
// memlet carries no write-conflict resolution.  For every pair of write
// memlets leaving a map scope through its exit (tasklet outputs, nested
// map exits, library nodes) and every map parameter p with step s, the
// detector compares
//
//   W(..., p, ...)  vs  W(..., p + d*s, ...)        (d fresh, d >= 1)
//
// with sym::Subset::disjoint.  Substituting only p (other parameters
// shared, i.e. equal) makes a proven intersection a *real* colliding
// iteration pair -> provable race.  Substituting the other parameters by
// fresh unconstrained symbols over-approximates every pair that differs
// in p -> a proven disjointness for every parameter proves safety.
// Everything in between is "unknown" and degrades to a warning.
#include <sstream>

#include "analysis/analysis.hpp"

namespace dace::analysis {

namespace {

using ir::Memlet;
using sym::Expr;
using sym::Subset;

enum class Verdict { Safe, Resolved, Race, Unknown };

struct MapParam {
  std::string name;
  Expr step;
};

/// Map parameters that can actually take two different values (ranges
/// with a provable extent of one cannot differ between iterations).
std::vector<MapParam> variable_params(const ir::MapEntry& me) {
  std::vector<MapParam> out;
  for (size_t i = 0; i < me.params.size(); ++i) {
    const sym::Range& r = me.range.range(i);
    Expr sz = r.size();
    if (sz.is_constant() && sz.constant() <= 1) continue;
    out.push_back({me.params[i], r.step});
  }
  return out;
}

/// Classify one ordered pair of write memlets of the same container.
Verdict classify_pair(const Memlet& wa, const Memlet& wb, bool same_memlet,
                      const std::vector<MapParam>& params) {
  if (wa.wcr != ir::WCR::None && wb.wcr != ir::WCR::None) {
    return wa.wcr == wb.wcr ? Verdict::Resolved : Verdict::Unknown;
  }
  if (wa.dynamic || wb.dynamic) return Verdict::Unknown;

  bool all_safe = true;
  for (const MapParam& p : params) {
    // Second iteration point: p' = p + d*step, all other parameters
    // either shared (exact pair, for the race proof) or fresh (every
    // pair, for the safety proof).
    sym::SubstMap shift;
    shift[p.name] = Expr::symbol(p.name) + Expr::symbol("__race_d") * p.step;
    sym::SubstMap shift_fresh = shift;
    for (const MapParam& q : params) {
      if (q.name != p.name)
        shift_fresh[q.name] = Expr::symbol("__race_o_" + q.name);
    }

    auto race1 = Subset::disjoint(wa.subset, wb.subset.subs(shift));
    if (race1.has_value() && !*race1) return Verdict::Race;
    auto safe1 = Subset::disjoint(wa.subset, wb.subset.subs(shift_fresh));
    bool safe = safe1.has_value() && *safe1;
    if (!same_memlet) {
      // The +d shift only covers pairs where wb's iteration is the later
      // one; distinct memlets need the mirrored direction too.
      auto race2 = Subset::disjoint(wb.subset, wa.subset.subs(shift));
      if (race2.has_value() && !*race2) return Verdict::Race;
      auto safe2 = Subset::disjoint(wb.subset, wa.subset.subs(shift_fresh));
      safe = safe && safe2.has_value() && *safe2;
    }
    if (!safe) all_safe = false;
  }
  return all_safe ? Verdict::Safe : Verdict::Unknown;
}

void check_scope(const ir::SDFG& sdfg, const ir::State& st, int sid,
                 int entry, AnalysisReport& report) {
  const auto* me = st.node_as<ir::MapEntry>(entry);
  std::vector<MapParam> params = variable_params(*me);
  if (params.empty()) return;  // at most one iteration: nothing can race

  // Writes leaving this scope: memlet edges into the paired exit.
  std::map<std::string, std::vector<const Memlet*>> writes;
  for (const auto& e : st.edges()) {
    if (e.dst != me->exit_node || e.memlet.empty()) continue;
    writes[e.memlet.data].push_back(&e.memlet);
  }

  for (const auto& [container, ws] : writes) {
    Verdict worst = Verdict::Safe;
    const Memlet* witness_a = nullptr;
    const Memlet* witness_b = nullptr;
    bool mixed_wcr = false;
    for (size_t i = 0; i < ws.size(); ++i) {
      for (size_t j = i; j < ws.size(); ++j) {
        Verdict v = classify_pair(*ws[i], *ws[j], i == j, params);
        bool worse = (v == Verdict::Race && worst != Verdict::Race) ||
                     (v == Verdict::Unknown && worst != Verdict::Race &&
                      worst != Verdict::Unknown);
        if (worse) {
          worst = v;
          witness_a = ws[i];
          witness_b = ws[j];
          mixed_wcr = (ws[i]->wcr == ir::WCR::None) !=
                      (ws[j]->wcr == ir::WCR::None);
        }
      }
    }
    if (worst != Verdict::Race && worst != Verdict::Unknown) continue;

    Diagnostic d;
    d.severity = worst == Verdict::Race ? Severity::Error : Severity::Warning;
    d.analysis = "race";
    d.sdfg = sdfg.name();
    d.state = sid;
    d.node = entry;
    d.container = container;
    d.memlet = witness_a->to_string();
    std::ostringstream msg;
    if (worst == Verdict::Race) {
      msg << "provable write-write race across iterations of map '"
          << me->name << "'";
    } else {
      msg << "cannot prove write disjointness across iterations of map '"
          << me->name << "'";
    }
    if (witness_b != witness_a) msg << " against " << witness_b->to_string();
    if (mixed_wcr) msg << " (one write resolves conflicts, the other does not)";
    d.message = msg.str();
    d.hint =
        "make the write subsets disjoint in the map parameters or attach a "
        "write-conflict resolution (e.g. WCR::Sum) to every write memlet";
    report.add(std::move(d));
  }
}

}  // namespace

void detect_races(const ir::SDFG& sdfg, AnalysisReport& report) {
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      if (st.node(nid)->kind == ir::NodeKind::MapEntry)
        check_scope(sdfg, st, sid, nid, report);
    }
  }
}

}  // namespace dace::analysis
