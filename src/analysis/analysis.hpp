// SDFG semantic analysis (the "sanitizer").
//
// Structural validation (ir/validate.cpp) guarantees a graph is well
// formed; the analyses here check that it *means* what the paper's SDFG
// semantics require (Section 2.3): map iterations are parallel only if
// their write memlets are provably disjoint or carry WCR, every memlet
// must stay within its container's shape, and the state machine must
// define data before it is used.  All three are best-effort symbolic
// analyses with three-valued verdicts -- provably wrong graphs produce
// errors, unprovable ones produce warnings, provably safe ones stay
// silent -- so they can run after every transformation pass
// (xf::Pipeline verify mode, DACE_VERIFY_PASSES=1) without drowning the
// pipeline in noise.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/sdfg.hpp"

namespace dace::analysis {

enum class Severity { Warning, Error };

inline const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

/// One finding of one analysis, with enough context to locate and fix it.
struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string analysis;   // "race" | "bounds" | "defuse"
  std::string sdfg;       // SDFG name (nested SDFGs are analyzed too)
  int state = -1;         // state id, -1 if interstate/global
  int node = -1;          // node id within the state, -1 if none
  std::string container;  // affected data container, may be empty
  std::string memlet;     // offending memlet (printed), may be empty
  std::string message;    // what is wrong
  std::string hint;       // how to fix it, may be empty

  std::string to_string() const;
  /// Stable identity used by Pipeline verify mode to tell pre-existing
  /// findings from ones a pass introduced (node ids shift under graph
  /// surgery, so they are excluded).
  std::string fingerprint() const;
};

/// Shared result sink of all analyses.
class AnalysisReport {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int num_errors() const;
  int num_warnings() const;
  bool has_errors() const { return num_errors() > 0; }
  bool empty() const { return diags_.empty(); }

  /// Fingerprints of all error diagnostics (see Diagnostic::fingerprint).
  std::set<std::string> error_fingerprints() const;

  /// Human-readable rendering, one line per finding plus a summary.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
};

// -- individual analyses -----------------------------------------------------

/// Race detector: for every map scope, instantiates each write memlet at
/// two distinct symbolic iteration points (i vs i + d*step with a fresh
/// d >= 1) and classifies each pair of writes leaving the scope as
/// safe / WCR-resolved / provable race (error) / unknown (warning).
/// Covers tasklet outputs, nested maps and library nodes (anything that
/// writes through the map exit).
void detect_races(const ir::SDFG& sdfg, AnalysisReport& report);

/// Bounds checker: proves each memlet subset lies within its container's
/// shape (0 <= begin and last-accessed < shape[d]).  Map parameters are
/// substituted by the corners of their iteration ranges, so a provable
/// out-of-bounds corner is a real access of a real iteration (error);
/// unprovable bounds degrade to warnings.
void check_bounds(const ir::SDFG& sdfg, AnalysisReport& report);

/// Interstate def-use analysis: reaching definitions per container over
/// the state machine.  Reads of never-written transients are errors,
/// reads that are uninitialized on some-but-not-all paths and writes
/// that are never read (dead writes) are warnings.
void analyze_defuse(const ir::SDFG& sdfg, AnalysisReport& report);

/// Run all three analyses on the SDFG and, recursively, on every nested
/// SDFG it contains.
AnalysisReport analyze(const ir::SDFG& sdfg);

/// True if DACE_VERIFY_PASSES is set to a non-empty, non-"0" value:
/// transformation pipelines verify after every pass and the executor
/// analyzes before the first run.
bool verify_env();

}  // namespace dace::analysis
