// AnalysisReport plumbing and the all-analyses entry point.
#include "analysis/analysis.hpp"

#include <cstdlib>
#include <sstream>

#include "common/obs.hpp"

namespace dace::analysis {

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << " [" << analysis << "] " << sdfg;
  if (state >= 0) os << " state " << state;
  if (node >= 0) os << " node " << node;
  if (!container.empty()) os << " '" << container << "'";
  os << ": " << message;
  if (!memlet.empty()) os << " (memlet " << memlet << ")";
  if (!hint.empty()) os << "\n    hint: " << hint;
  return os.str();
}

std::string Diagnostic::fingerprint() const {
  std::ostringstream os;
  os << severity_name(severity) << "|" << analysis << "|" << sdfg << "|"
     << container << "|" << memlet << "|" << message;
  return os.str();
}

int AnalysisReport::num_errors() const {
  int n = 0;
  for (const auto& d : diags_) n += d.severity == Severity::Error;
  return n;
}

int AnalysisReport::num_warnings() const {
  int n = 0;
  for (const auto& d : diags_) n += d.severity == Severity::Warning;
  return n;
}

std::set<std::string> AnalysisReport::error_fingerprints() const {
  std::set<std::string> out;
  for (const auto& d : diags_) {
    if (d.severity == Severity::Error) out.insert(d.fingerprint());
  }
  return out;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << "\n";
  os << num_errors() << " error(s), " << num_warnings() << " warning(s)\n";
  return os.str();
}

namespace {

void analyze_into(const ir::SDFG& sdfg, AnalysisReport& report) {
  {
    OBS_SPAN("analysis", "race");
    detect_races(sdfg, report);
  }
  {
    OBS_SPAN("analysis", "bounds");
    check_bounds(sdfg, report);
  }
  {
    OBS_SPAN("analysis", "defuse");
    analyze_defuse(sdfg, report);
  }
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      if (const auto* nn = st.node_as<ir::NestedSDFGNode>(nid)) {
        if (nn->sdfg) analyze_into(*nn->sdfg, report);
      }
    }
  }
}

}  // namespace

AnalysisReport analyze(const ir::SDFG& sdfg) {
  AnalysisReport report;
  analyze_into(sdfg, report);
  return report;
}

bool verify_env() {
  const char* env = std::getenv("DACE_VERIFY_PASSES");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

}  // namespace dace::analysis
